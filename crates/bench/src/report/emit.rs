//! Emitters: one [`ReportSpec`], three machine-readable formats plus the
//! console table — and the `--out` CLI grammar that selects them.
//!
//! * **JSON** ([`ReportSpec::to_json_string`]) — schema-versioned; carries
//!   every [`RunRecord`] verbatim plus derived [`CellSummary`]s.
//!   [`ReportSpec::from_json_str`] parses it back: `parse ∘ emit` is the
//!   identity on `(title, records)`.
//! * **CSV** ([`ReportSpec::to_csv`]) — long format, one row per
//!   cell × registered metric, with mean/stddev/min/max/ci95 columns.
//! * **Markdown** ([`ReportSpec::to_markdown`]) — paper-style table of the
//!   headline metrics, `mean ± ci95` per cell.
//!
//! Binaries take the formats via repeatable `--out` flags
//! (`--out json:results/run.json --out md:report.md`), parsed by
//! [`OutputSpec::parse`].

use super::json::Json;
use super::metrics::{metric, HEADLINE, METRICS};
use super::record::{
    CellSummary, MetricSummary, ReportSpec, RunRecord, BENCH_SCHEMA, REPORT_SCHEMA, SCHEMA_VERSION,
};
use dtn_sim::{LatencyHistogram, StatsSnapshot, TimeSeries, TsSample};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Serialization format of one `--out` target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputFormat {
    /// Schema-versioned JSON (records + cells).
    Json,
    /// Long-format CSV (one row per cell × metric).
    Csv,
    /// Paper-style Markdown tables.
    Markdown,
}

/// One parsed `--out FORMAT:PATH` target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputSpec {
    /// What to emit.
    pub format: OutputFormat,
    /// Where to write it (parent directories are created).
    pub path: PathBuf,
}

impl OutputSpec {
    /// Parses the `--out` grammar: `json:PATH`, `csv:PATH` or `md:PATH`
    /// (alias `markdown:PATH`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (fmt, path) = s
            .split_once(':')
            .ok_or_else(|| format!("--out `{s}`: expected FORMAT:PATH (json:|csv:|md:)"))?;
        if path.is_empty() {
            return Err(format!("--out `{s}`: empty path"));
        }
        let format = match fmt {
            "json" => OutputFormat::Json,
            "csv" => OutputFormat::Csv,
            "md" | "markdown" => OutputFormat::Markdown,
            other => {
                return Err(format!(
                    "--out `{s}`: unknown format `{other}` (valid: json, csv, md)"
                ))
            }
        };
        Ok(OutputSpec {
            format,
            path: PathBuf::from(path),
        })
    }
}

/// Creates `path`'s parent directory (and ancestors) if missing — the one
/// shared output-hygiene helper every artifact/report writer goes through.
/// Errors carry both the directory and the target path (a bare `io::Error`
/// names neither the file nor the phase that failed).
pub fn ensure_parent(path: &Path) -> io::Result<()> {
    // `Path::parent` of a bare filename is `Some("")`, which would make
    // `create_dir_all` fail spuriously — filter it out.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!(
                    "creating parent directory {} for {}: {e}",
                    dir.display(),
                    path.display()
                ),
            )
        })?;
    }
    Ok(())
}

/// Writes `text` to `path`, creating parent directories as needed
/// ([`ensure_parent`]). Errors carry the offending path.
pub fn write_text(path: &Path, text: &str) -> io::Result<()> {
    ensure_parent(path)?;
    std::fs::write(path, text)
        .map_err(|e| io::Error::new(e.kind(), format!("writing {}: {e}", path.display())))
}

impl ReportSpec {
    /// Emits the report in `out`'s format to `out`'s path.
    pub fn write(&self, out: &OutputSpec) -> io::Result<()> {
        let text = match out.format {
            OutputFormat::Json => self.to_json_string(),
            OutputFormat::Csv => self.to_csv(),
            OutputFormat::Markdown => self.to_markdown(),
        };
        write_text(&out.path, &text)
    }

    /// Emits to every target, reporting each written path on stderr and
    /// failures without aborting the remaining targets. Returns `true` when
    /// all targets succeeded.
    pub fn write_all(&self, outs: &[OutputSpec]) -> bool {
        let mut ok = true;
        for out in outs {
            match self.write(out) {
                Ok(()) => eprintln!("wrote {}", out.path.display()),
                Err(e) => {
                    eprintln!("output failed: {e}");
                    ok = false;
                }
            }
        }
        ok
    }

    /// The full JSON document: schema/version header, verbatim records and
    /// derived cell summaries.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(REPORT_SCHEMA)),
            ("version", Json::uint(u64::from(SCHEMA_VERSION))),
            ("title", Json::str(&self.title)),
            (
                "records",
                Json::arr(self.records.iter().map(record_to_json).collect()),
            ),
            (
                "cells",
                Json::arr(self.cells().iter().map(cell_to_json).collect()),
            ),
        ])
    }

    /// [`ReportSpec::to_json`], rendered.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parses a document emitted by [`ReportSpec::to_json_string`].
    /// Validates the schema name and version, then reconstructs the records
    /// exactly (cells are derived data and are re-computed on demand).
    pub fn from_json_str(text: &str) -> Result<ReportSpec, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// [`ReportSpec::from_json_str`] over an already-parsed document.
    pub fn from_json(doc: &Json) -> Result<ReportSpec, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == REPORT_SCHEMA => {}
            other => {
                return Err(format!(
                    "not a {REPORT_SCHEMA} document (schema: {other:?})"
                ))
            }
        }
        // Older versions stay parseable: every field v2 added over v1 is
        // optional, so a v1 document is a valid v2 document.
        match doc.get("version").and_then(Json::as_u64) {
            Some(v) if (1..=u64::from(SCHEMA_VERSION)).contains(&v) => {}
            other => {
                return Err(format!(
                    "unsupported schema version {other:?} (expected 1..={SCHEMA_VERSION})"
                ))
            }
        }
        let title = doc
            .get("title")
            .and_then(Json::as_str)
            .ok_or("missing title")?
            .to_string();
        let records = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("missing records array")?
            .iter()
            .enumerate()
            .map(|(i, r)| record_from_json(r).map_err(|e| format!("record {i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReportSpec { title, records })
    }

    /// Long-format CSV: header plus one row per cell × registered metric.
    /// Cells carrying an aggregated time series additionally get one row per
    /// sample × curve metric, keyed `ts_<metric>@<t>` (same columns).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "series,scenario,workload,protocol,n_nodes,duration_s,metric,unit,\
             mean,stddev,min,max,ci95,runs\n",
        );
        for cell in self.cells() {
            let mut row = |key: &str, unit: &str, s: &MetricSummary| {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{key},{unit},{},{},{},{},{},{}",
                    csv_field(&cell.series),
                    csv_field(&cell.scenario),
                    csv_field(&cell.workload),
                    csv_field(&cell.protocol),
                    cell.n_nodes,
                    cell.duration,
                    s.mean,
                    s.stddev,
                    s.min,
                    s.max,
                    s.ci95,
                    s.n,
                );
            };
            for (key, s) in &cell.metrics {
                let unit = metric(key).map_or("", |m| m.unit);
                row(key, unit, s);
            }
            if let Some(ts) = &cell.timeseries {
                for p in &ts.points {
                    row(
                        &format!("ts_delivery_ratio@{}", p.t),
                        "ratio",
                        &p.delivery_ratio,
                    );
                    row(
                        &format!("ts_overhead_ratio@{}", p.t),
                        "ratio",
                        &p.overhead_ratio,
                    );
                    row(&format!("ts_buffered_mb@{}", p.t), "MB", &p.buffered_mb);
                }
            }
        }
        out
    }

    /// Paper-style Markdown: title, run census and a headline-metric table
    /// (`mean ± ci95` per cell; the ± part is omitted for single-seed
    /// cells).
    pub fn to_markdown(&self) -> String {
        let cells = self.cells();
        let mut out = format!("# {}\n\n", self.title);
        let _ = writeln!(
            out,
            "{} runs over {} cells (seeds per cell: {}).\n",
            self.records.len(),
            cells.len(),
            cells.iter().map(|c| c.seeds.len()).max().unwrap_or(0)
        );
        out.push_str("| Series | Scenario | Workload | Protocol | N |");
        for key in HEADLINE {
            let m = metric(key).expect("headline keys are registered");
            if m.unit == "ratio" || m.unit == "hops" {
                let _ = write!(out, " {} |", m.name);
            } else {
                let _ = write!(out, " {} ({}) |", m.name, m.unit);
            }
        }
        out.push_str("\n|---|---|---|---|---|");
        for _ in HEADLINE {
            out.push_str("---|");
        }
        out.push('\n');
        for cell in &cells {
            let _ = write!(
                out,
                "| {} | `{}` | `{}` | `{}` | {} |",
                cell.series, cell.scenario, cell.workload, cell.protocol, cell.n_nodes
            );
            for key in HEADLINE {
                let s = cell.metric(key).expect("every metric is summarized");
                let _ = write!(out, " {} |", format_mean_ci(key, s.mean, s.ci95, s.n));
            }
            out.push('\n');
        }
        // Probe sections ride along when present.
        if cells.iter().any(|c| c.timeseries.is_some()) {
            out.push_str("\n## Delivery over time\n\n");
            out.push_str(
                "Mean delivery ratio at sampled times (time-series probe, up to 12 \
                 columns shown).\n\n",
            );
            for cell in &cells {
                let Some(ts) = &cell.timeseries else { continue };
                // Subsample long curves so the table stays readable.
                let stride = ts.points.len().div_ceil(12).max(1);
                let picks: Vec<_> = ts.points.iter().step_by(stride).collect();
                let _ = writeln!(out, "**{} (N = {})**\n", cell.series, cell.n_nodes);
                out.push_str("| t (s) |");
                for p in &picks {
                    let _ = write!(out, " {:.0} |", p.t);
                }
                out.push_str("\n|---|");
                for _ in &picks {
                    out.push_str("---|");
                }
                out.push_str("\n| delivery ratio |");
                for p in &picks {
                    let _ = write!(out, " {:.4} |", p.delivery_ratio.mean);
                }
                out.push_str("\n| overhead ratio |");
                for p in &picks {
                    let _ = write!(out, " {:.2} |", p.overhead_ratio.mean);
                }
                out.push_str("\n| buffered (MB) |");
                for p in &picks {
                    let _ = write!(out, " {:.3} |", p.buffered_mb.mean);
                }
                out.push_str("\n\n");
            }
        }
        // Percentiles exist only for cells whose records carried the
        // latency probe (unmeasured metrics are absent, not zero).
        let latency_cells: Vec<_> = cells
            .iter()
            .filter(|c| c.metric("latency_p50").is_some())
            .collect();
        if !latency_cells.is_empty() {
            out.push_str("\n## Latency percentiles\n\n");
            out.push_str("| Series | N | p50 (s) | p95 (s) | p99 (s) |\n|---|---|---|---|---|\n");
            for cell in latency_cells {
                let _ = write!(out, "| {} | {} |", cell.series, cell.n_nodes);
                for key in ["latency_p50", "latency_p95", "latency_p99"] {
                    let s = cell.metric(key).expect("measured alongside p50");
                    let _ = write!(out, " {} |", format_mean_ci(key, s.mean, s.ci95, s.n));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Fixed-width console table of the headline metrics — the shared
    /// human-readable view the sweep binaries print.
    pub fn render_table(&self) -> String {
        let mut out = format!("\n{}\n", self.title);
        let _ = write!(out, "{:<36}{:>6}", "series", "N");
        for key in HEADLINE {
            let short = match *key {
                "delivery_ratio" => "deliv",
                "latency_s" => "latency",
                "overhead_ratio" => "overhd",
                "control_mb" => "ctrl MB",
                other => other,
            };
            let _ = write!(out, "{short:>10}");
        }
        let _ = writeln!(out, "{:>8}", "seeds");
        for cell in self.cells() {
            let _ = write!(out, "{:<36}{:>6}", cell.series, cell.n_nodes);
            for key in HEADLINE {
                let s = cell.metric(key).expect("every metric is summarized");
                let text = match *key {
                    "latency_s" => format!("{:.1}", s.mean),
                    "control_mb" | "overhead_ratio" | "hops" => format!("{:.2}", s.mean),
                    _ => format!("{:.4}", s.mean),
                };
                let _ = write!(out, "{text:>10}");
            }
            let _ = writeln!(out, "{:>8}", cell.seeds.len());
        }
        out
    }

    /// The bench-trajectory document (`BENCH_<name>.json`): per-cell
    /// headline means and wall-clock statistics plus the total runner
    /// wall-clock, so performance is comparable across code revisions.
    pub fn to_bench_json_string(&self, bench: &str) -> String {
        let cells = self.cells();
        Json::obj([
            ("schema", Json::str(BENCH_SCHEMA)),
            ("version", Json::uint(u64::from(SCHEMA_VERSION))),
            ("bench", Json::str(bench)),
            ("title", Json::str(&self.title)),
            ("runs", Json::uint(self.records.len() as u64)),
            ("wall_s_total", Json::num(self.wall_s_total())),
            ("computed_wall_s", Json::num(self.computed_wall_s())),
            (
                "served_from_store",
                Json::uint(self.served_from_store() as u64),
            ),
            (
                "cells",
                Json::arr(
                    cells
                        .iter()
                        .map(|c| {
                            let wall = c.metric("wall_s").expect("wall_s is registered");
                            Json::obj([
                                ("cell", Json::str(&c.group)),
                                ("series", Json::str(&c.series)),
                                ("n_nodes", Json::uint(u64::from(c.n_nodes))),
                                ("runs", Json::uint(c.seeds.len() as u64)),
                                (
                                    "delivery_ratio",
                                    Json::num(c.metric("delivery_ratio").unwrap().mean),
                                ),
                                ("latency_s", Json::num(c.metric("latency_s").unwrap().mean)),
                                ("wall_s_mean", Json::num(wall.mean)),
                                ("wall_s_max", Json::num(wall.max)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render()
    }
}

/// `mean ± ci95` with metric-appropriate precision; the spread is omitted
/// when only one run backs the cell.
fn format_mean_ci(key: &str, mean: f64, ci95: f64, n: u32) -> String {
    let (value, spread) = match key {
        "latency_s" | "latency_p50" | "latency_p95" | "latency_p99" => {
            (format!("{mean:.1}"), format!("{ci95:.1}"))
        }
        "control_mb" | "overhead_ratio" | "hops" => (format!("{mean:.2}"), format!("{ci95:.2}")),
        _ => (format!("{mean:.4}"), format!("{ci95:.4}")),
    };
    if n < 2 {
        value
    } else {
        format!("{value} ± {spread}")
    }
}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn timeseries_to_json(ts: &TimeSeries) -> Json {
    Json::obj([
        ("dt", Json::num(ts.dt)),
        (
            "samples",
            Json::arr(
                ts.samples
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("t", Json::num(s.t)),
                            ("created", Json::uint(s.created)),
                            ("delivered", Json::uint(s.delivered)),
                            ("relayed", Json::uint(s.relayed)),
                            ("dropped", Json::uint(s.dropped)),
                            ("buffered_bytes", Json::uint(s.buffered_bytes)),
                            ("buffered_msgs", Json::uint(s.buffered_msgs)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn timeseries_from_json(j: &Json) -> Result<TimeSeries, String> {
    let dt = j
        .get("dt")
        .and_then(Json::as_f64)
        .ok_or("timeseries: missing `dt`")?;
    let samples = j
        .get("samples")
        .and_then(Json::as_arr)
        .ok_or("timeseries: missing `samples` array")?
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let num = |key: &str| {
                s.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("timeseries sample {i}: missing `{key}`"))
            };
            let count = |key: &str| {
                s.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("timeseries sample {i}: missing `{key}`"))
            };
            Ok(TsSample {
                t: num("t")?,
                created: count("created")?,
                delivered: count("delivered")?,
                relayed: count("relayed")?,
                dropped: count("dropped")?,
                buffered_bytes: count("buffered_bytes")?,
                buffered_msgs: count("buffered_msgs")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(TimeSeries { dt, samples })
}

fn latency_to_json(l: &LatencyHistogram) -> Json {
    Json::obj([
        ("count", Json::uint(l.count)),
        ("p50", Json::num(l.p50)),
        ("p95", Json::num(l.p95)),
        ("p99", Json::num(l.p99)),
        ("max", Json::num(l.max)),
        (
            "buckets",
            Json::arr(l.buckets.iter().map(|&b| Json::uint(b)).collect()),
        ),
    ])
}

fn latency_from_json(j: &Json) -> Result<LatencyHistogram, String> {
    let num = |key: &str| {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("latency_hist: missing `{key}`"))
    };
    Ok(LatencyHistogram {
        count: j
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("latency_hist: missing `count`")?,
        p50: num("p50")?,
        p95: num("p95")?,
        p99: num("p99")?,
        max: num("max")?,
        buckets: j
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("latency_hist: missing `buckets` array")?
            .iter()
            .enumerate()
            .map(|(i, b)| {
                b.as_u64()
                    .ok_or_else(|| format!("latency_hist: bucket {i} is not a count"))
            })
            .collect::<Result<Vec<_>, String>>()?,
    })
}

fn record_to_json(r: &RunRecord) -> Json {
    let mut fields = vec![
        ("series", Json::str(&r.series)),
        ("scenario", Json::str(&r.scenario)),
        ("workload", Json::str(&r.workload)),
        ("protocol", Json::str(&r.protocol)),
        ("seed", Json::uint(r.seed)),
        ("n_nodes", Json::uint(u64::from(r.n_nodes))),
        ("duration_s", Json::num(r.duration)),
        ("cell", Json::str(&r.cell)),
        ("group", Json::str(&r.group)),
        ("wall_s", Json::num(r.wall_s)),
        (
            "stats",
            Json::obj([
                ("created", Json::uint(r.stats.created)),
                ("delivered", Json::uint(r.stats.delivered)),
                (
                    "duplicate_deliveries",
                    Json::uint(r.stats.duplicate_deliveries),
                ),
                ("relayed", Json::uint(r.stats.relayed)),
                ("aborted", Json::uint(r.stats.aborted)),
                ("drops_buffer", Json::uint(r.stats.drops_buffer)),
                ("drops_ttl", Json::uint(r.stats.drops_ttl)),
                ("drops_protocol", Json::uint(r.stats.drops_protocol)),
                ("refused", Json::uint(r.stats.refused)),
                ("control_bytes", Json::uint(r.stats.control_bytes)),
                ("latency_sum", Json::num(r.stats.latency_sum)),
                ("hops_sum", Json::uint(r.stats.hops_sum)),
            ]),
        ),
    ];
    if let Some(ts) = &r.timeseries {
        fields.push(("timeseries", timeseries_to_json(ts)));
    }
    if let Some(l) = &r.latency {
        fields.push(("latency_hist", latency_to_json(l)));
    }
    if let Some(a) = &r.artifact {
        fields.push(("artifact", Json::str(a)));
    }
    if r.cached {
        fields.push(("cached", Json::Bool(true)));
    }
    Json::obj(fields)
}

fn record_from_json(j: &Json) -> Result<RunRecord, String> {
    let get_str = |key: &str| {
        j.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let get_f64 = |key: &str| {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number field `{key}`"))
    };
    let stats = j.get("stats").ok_or("missing stats object")?;
    let stat_u64 = |key: &str| {
        stats
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing stats field `{key}`"))
    };
    Ok(RunRecord {
        series: get_str("series")?,
        scenario: get_str("scenario")?,
        workload: get_str("workload")?,
        protocol: get_str("protocol")?,
        seed: j.get("seed").and_then(Json::as_u64).ok_or("missing seed")?,
        n_nodes: j
            .get("n_nodes")
            .and_then(Json::as_u64)
            .ok_or("missing n_nodes")? as u32,
        duration: get_f64("duration_s")?,
        cell: get_str("cell")?,
        group: get_str("group")?,
        wall_s: get_f64("wall_s")?,
        stats: StatsSnapshot {
            created: stat_u64("created")?,
            delivered: stat_u64("delivered")?,
            duplicate_deliveries: stat_u64("duplicate_deliveries")?,
            relayed: stat_u64("relayed")?,
            aborted: stat_u64("aborted")?,
            drops_buffer: stat_u64("drops_buffer")?,
            drops_ttl: stat_u64("drops_ttl")?,
            drops_protocol: stat_u64("drops_protocol")?,
            refused: stat_u64("refused")?,
            control_bytes: stat_u64("control_bytes")?,
            latency_sum: stats
                .get("latency_sum")
                .and_then(Json::as_f64)
                .ok_or("missing stats field `latency_sum`")?,
            hops_sum: stat_u64("hops_sum")?,
        },
        timeseries: j.get("timeseries").map(timeseries_from_json).transpose()?,
        latency: j.get("latency_hist").map(latency_from_json).transpose()?,
        artifact: j
            .get("artifact")
            .map(|a| {
                a.as_str()
                    .map(str::to_string)
                    .ok_or("field `artifact` is not a string".to_string())
            })
            .transpose()?,
        cached: j.get("cached").and_then(Json::as_bool).unwrap_or(false),
    })
}

fn summary_to_json(s: &MetricSummary) -> Json {
    Json::obj([
        ("mean", Json::num(s.mean)),
        ("stddev", Json::num(s.stddev)),
        ("min", Json::num(s.min)),
        ("max", Json::num(s.max)),
        ("ci95", Json::num(s.ci95)),
        ("n", Json::uint(u64::from(s.n))),
    ])
}

fn cell_to_json(c: &CellSummary) -> Json {
    let mut fields = vec![
        ("group", Json::str(&c.group)),
        ("series", Json::str(&c.series)),
        ("scenario", Json::str(&c.scenario)),
        ("workload", Json::str(&c.workload)),
        ("protocol", Json::str(&c.protocol)),
        ("n_nodes", Json::uint(u64::from(c.n_nodes))),
        ("duration_s", Json::num(c.duration)),
        (
            "seeds",
            Json::arr(c.seeds.iter().map(|&s| Json::uint(s)).collect()),
        ),
        (
            "metrics",
            Json::Obj(
                c.metrics
                    .iter()
                    .map(|(key, s)| ((*key).to_string(), summary_to_json(s)))
                    .collect(),
            ),
        ),
    ];
    if let Some(ts) = &c.timeseries {
        fields.push((
            "timeseries",
            Json::obj([
                ("dt", Json::num(ts.dt)),
                (
                    "points",
                    Json::arr(
                        ts.points
                            .iter()
                            .map(|p| {
                                Json::obj([
                                    ("t", Json::num(p.t)),
                                    ("delivery_ratio", summary_to_json(&p.delivery_ratio)),
                                    ("overhead_ratio", summary_to_json(&p.overhead_ratio)),
                                    ("buffered_mb", summary_to_json(&p.buffered_mb)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    Json::obj(fields)
}

/// Validates a report or bench-trajectory document: schema/version header,
/// required per-item fields, and — walking the whole tree — that every
/// number is finite (the emitter turns non-finite values into `null`, which
/// this rejects). Returns a human-readable description on failure.
pub fn validate_document(text: &str) -> Result<String, String> {
    let doc = Json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` field")?;
    // Documents from older revisions (e.g. BENCH_*.json perf trajectories,
    // whose whole point is cross-revision comparison) stay valid: every
    // field added since v1 is optional.
    match doc.get("version").and_then(Json::as_u64) {
        Some(v) if (1..=u64::from(SCHEMA_VERSION)).contains(&v) => {}
        other => {
            return Err(format!(
                "unsupported version {other:?} (expected 1..={SCHEMA_VERSION})"
            ))
        }
    }
    let mut numbers = 0usize;
    check_finite(&doc, "$", &mut numbers)?;
    match schema {
        s if s == REPORT_SCHEMA => {
            let report = ReportSpec::from_json(&doc)?;
            // Probe sections: the parser above already rejected malformed
            // ones; here the *semantic* invariants are enforced.
            for (i, r) in report.records.iter().enumerate() {
                if let Some(ts) = &r.timeseries {
                    if !(ts.dt.is_finite() && ts.dt > 0.0) {
                        return Err(format!("record {i}: timeseries dt must be positive"));
                    }
                    for w in ts.samples.windows(2) {
                        if w[1].t < w[0].t {
                            return Err(format!(
                                "record {i}: timeseries sample times must be non-decreasing \
                                 ({} after {})",
                                w[1].t, w[0].t
                            ));
                        }
                        if w[1].created < w[0].created
                            || w[1].delivered < w[0].delivered
                            || w[1].relayed < w[0].relayed
                            || w[1].dropped < w[0].dropped
                        {
                            return Err(format!(
                                "record {i}: timeseries counters must be cumulative \
                                 (non-decreasing)"
                            ));
                        }
                    }
                    if let Some(last) = ts.samples.last() {
                        if last.delivered != r.stats.delivered {
                            return Err(format!(
                                "record {i}: timeseries final delivered ({}) disagrees with \
                                 the record's stats ({})",
                                last.delivered, r.stats.delivered
                            ));
                        }
                    }
                }
                if let Some(l) = &r.latency {
                    if l.buckets.iter().sum::<u64>() != l.count {
                        return Err(format!(
                            "record {i}: latency_hist buckets must sum to count ({})",
                            l.count
                        ));
                    }
                    if !(l.p50 <= l.p95 && l.p95 <= l.p99 && l.p99 <= l.max) {
                        return Err(format!(
                            "record {i}: latency_hist percentiles must be ordered \
                             (p50 ≤ p95 ≤ p99 ≤ max)"
                        ));
                    }
                    if l.count != r.stats.delivered {
                        return Err(format!(
                            "record {i}: latency_hist count ({}) disagrees with the \
                             record's delivered ({})",
                            l.count, r.stats.delivered
                        ));
                    }
                }
            }
            let cells = doc
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("missing `cells` array")?;
            for (i, cell) in cells.iter().enumerate() {
                for field in ["group", "series"] {
                    if cell.get(field).and_then(Json::as_str).is_none() {
                        return Err(format!("cell {i}: missing `{field}`"));
                    }
                }
                let metrics = cell
                    .get("metrics")
                    .ok_or(format!("cell {i}: missing `metrics`"))?;
                for m in METRICS {
                    let Some(summary) = metrics.get(m.key) else {
                        // Probe-dependent metrics are legitimately absent
                        // when the probe was not attached; everything else
                        // must be present.
                        if m.available.is_some() {
                            continue;
                        }
                        return Err(format!("cell {i}: metric `{}` missing", m.key));
                    };
                    // Each statistic must be an actual number: the emitter
                    // writes `null` for non-finite values, which must fail
                    // here, not pass as merely "present".
                    for field in ["mean", "stddev", "min", "max", "ci95"] {
                        if summary.get(field).and_then(Json::as_f64).is_none() {
                            return Err(format!(
                                "cell {i}: metric `{}`: `{field}` is not a number",
                                m.key
                            ));
                        }
                    }
                    if summary.get("n").and_then(Json::as_u64).is_none() {
                        return Err(format!("cell {i}: metric `{}`: bad `n`", m.key));
                    }
                }
                if let Some(ts) = cell.get("timeseries") {
                    if ts.get("dt").and_then(Json::as_f64).is_none() {
                        return Err(format!("cell {i}: timeseries: missing `dt`"));
                    }
                    let points = ts
                        .get("points")
                        .and_then(Json::as_arr)
                        .ok_or(format!("cell {i}: timeseries: missing `points` array"))?;
                    for (k, p) in points.iter().enumerate() {
                        if p.get("t").and_then(Json::as_f64).is_none() {
                            return Err(format!("cell {i}: timeseries point {k}: missing `t`"));
                        }
                        for curve in ["delivery_ratio", "overhead_ratio", "buffered_mb"] {
                            let s = p.get(curve).ok_or_else(|| {
                                format!("cell {i}: timeseries point {k}: missing `{curve}`")
                            })?;
                            if s.get("mean").and_then(Json::as_f64).is_none() {
                                return Err(format!(
                                    "cell {i}: timeseries point {k}: `{curve}.mean` is not a \
                                     number"
                                ));
                            }
                        }
                    }
                }
            }
            Ok(format!(
                "{schema} v{SCHEMA_VERSION}: {} records, {} cells, {numbers} finite numbers",
                report.records.len(),
                cells.len()
            ))
        }
        s if s == BENCH_SCHEMA => {
            let cells = doc
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("missing `cells` array")?;
            if cells.is_empty() {
                return Err("bench trajectory has no cells".into());
            }
            doc.get("wall_s_total")
                .and_then(Json::as_f64)
                .ok_or("missing `wall_s_total`")?;
            for (i, cell) in cells.iter().enumerate() {
                for field in ["cell", "series"] {
                    if cell.get(field).and_then(Json::as_str).is_none() {
                        return Err(format!("cell {i}: missing `{field}`"));
                    }
                }
                for field in ["delivery_ratio", "latency_s", "wall_s_mean", "wall_s_max"] {
                    if cell.get(field).and_then(Json::as_f64).is_none() {
                        return Err(format!("cell {i}: missing number `{field}`"));
                    }
                }
            }
            Ok(format!(
                "{schema} v{SCHEMA_VERSION}: {} cells, {numbers} finite numbers",
                cells.len()
            ))
        }
        other => Err(format!("unknown schema `{other}`")),
    }
}

fn check_finite(j: &Json, path: &str, numbers: &mut usize) -> Result<(), String> {
    match j {
        Json::Num(v) => {
            if !v.is_finite() {
                return Err(format!("non-finite number at {path}"));
            }
            *numbers += 1;
            Ok(())
        }
        Json::Uint(_) => {
            *numbers += 1;
            Ok(())
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                check_finite(item, &format!("{path}[{i}]"), numbers)?;
            }
            Ok(())
        }
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                check_finite(v, &format!("{path}.{k}"), numbers)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report() -> ReportSpec {
        let mut report = ReportSpec::new("emit test");
        for seed in 1..=3u64 {
            let mut r = crate::report::record::RunRecord {
                series: "EER".into(),
                scenario: "paper:40".into(),
                workload: "paper".into(),
                protocol: "eer".into(),
                seed,
                n_nodes: 40,
                duration: 1000.0,
                cell: format!("scenario=paper|seed={seed}|dur=0"),
                group: "scenario=paper|dur=0".into(),
                stats: StatsSnapshot {
                    created: 100,
                    delivered: 40 + seed * 10,
                    relayed: 300,
                    latency_sum: 5000.0,
                    hops_sum: 120,
                    control_bytes: 2 * 1024 * 1024,
                    ..Default::default()
                },
                wall_s: 0.5,
                timeseries: None,
                latency: None,
                artifact: None,
                cached: false,
            };
            r.stats.aborted = seed;
            report.push(r);
        }
        report
    }

    #[test]
    fn json_emit_parse_identity() {
        let mut report = synthetic_report();
        report.records[1].cached = true;
        let text = report.to_json_string();
        let back = ReportSpec::from_json_str(&text).unwrap();
        assert_eq!(back, report);
        assert!(!back.records[0].cached, "absent `cached` parses as false");
        assert!(back.records[1].cached);
        assert_eq!(report.served_from_store(), 1);
        assert!(report.computed_wall_s() < report.wall_s_total());
    }

    #[test]
    fn json_validates() {
        let report = synthetic_report();
        let summary = validate_document(&report.to_json_string()).unwrap();
        assert!(summary.contains("3 records"));
        let bench = report.to_bench_json_string("shootout");
        let summary = validate_document(&bench).unwrap();
        assert!(summary.contains("1 cells"));
    }

    /// Documents emitted by older revisions stay parseable and valid: the
    /// v2/v3 additions over v1 are all optional, and the BENCH_*.json perf
    /// trajectory exists precisely to be compared across revisions.
    #[test]
    fn old_documents_still_parse_and_validate() {
        let report = synthetic_report();
        for old in ["\"version\": 1", "\"version\": 2"] {
            let doc = report.to_json_string().replace("\"version\": 3", old);
            assert_ne!(doc, report.to_json_string(), "version must appear once");
            assert_eq!(ReportSpec::from_json_str(&doc).unwrap(), report);
            validate_document(&doc).unwrap();
            let bench = report
                .to_bench_json_string("shootout")
                .replace("\"version\": 3", old);
            validate_document(&bench).unwrap();
        }
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_document("{}").is_err());
        assert!(validate_document("{\"schema\": \"cen-dtn.report\", \"version\": 99}").is_err());
        let report = synthetic_report();

        // A report whose records array was renamed away must fail.
        let text = report.to_json_string();
        let renamed = text.replace("\"records\"", "\"recordz\"");
        assert!(validate_document(&renamed).is_err());

        // A report cell statistic of `null` — exactly what the emitter
        // writes for a non-finite value — must fail, not merely be
        // "present". delivery_ratio's per-seed values are 0.5/0.6/0.7, so
        // its summary mean is exactly 0.6.
        let nulled = text.replace("\"mean\": 0.6,", "\"mean\": null,");
        assert_ne!(nulled, text, "tamper target must exist in the document");
        let err = validate_document(&nulled).unwrap_err();
        assert!(err.contains("not a number"), "{err}");

        // A bench trajectory with a non-finite number (JSON `1e999`
        // overflows to infinity when parsed as f64) must fail.
        let bench = report
            .to_bench_json_string("shootout")
            .replace("\"wall_s_total\": 1.5", "\"wall_s_total\": 1e999");
        assert!(validate_document(&bench).is_err());
    }

    #[test]
    fn csv_is_long_format() {
        let csv = synthetic_report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("series,scenario,workload,protocol,n_nodes"));
        // One cell × all registered metrics.
        // One cell × every always-measured metric (the synthetic records
        // carry no probes, so probe-dependent metrics are absent).
        let measured = METRICS.iter().filter(|m| m.available.is_none()).count();
        assert_eq!(lines.len(), 1 + measured);
        assert!(csv.contains("EER,paper:40,paper,eer,40,1000,delivery_ratio,ratio,"));
    }

    #[test]
    fn markdown_has_mean_and_ci() {
        let md = synthetic_report().to_markdown();
        assert!(md.starts_with("# emit test"));
        assert!(md.contains("| Series |"));
        assert!(md.contains("±"), "multi-seed cells show the CI: {md}");
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn output_spec_grammar() {
        let o = OutputSpec::parse("json:results/x.json").unwrap();
        assert_eq!(o.format, OutputFormat::Json);
        assert_eq!(o.path, PathBuf::from("results/x.json"));
        assert_eq!(
            OutputSpec::parse("md:r.md").unwrap().format,
            OutputFormat::Markdown
        );
        assert_eq!(
            OutputSpec::parse("markdown:r.md").unwrap().format,
            OutputFormat::Markdown
        );
        assert!(OutputSpec::parse("yaml:x").is_err());
        assert!(OutputSpec::parse("json:").is_err());
        assert!(OutputSpec::parse("no-colon").is_err());
    }

    #[test]
    fn write_text_creates_nested_parents_and_bare_files() {
        let dir = std::env::temp_dir().join("dtn_report_write_text");
        std::fs::remove_dir_all(&dir).ok();
        let nested = dir.join("a/b/c.txt");
        write_text(&nested, "x").unwrap();
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "x");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_text_errors_name_the_path() {
        let dir = std::env::temp_dir().join("dtn_report_write_text_err");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Parent is a regular file: creating the directory must fail and the
        // error must say which path was involved.
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "").unwrap();
        let target = blocker.join("sub/out.csv");
        let err = write_text(&target, "x").unwrap_err();
        assert!(
            err.to_string().contains("out.csv"),
            "error must name the target: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
