//! A minimal JSON document model, emitter and parser.
//!
//! The workspace builds fully offline (no crates.io), so the report layer
//! carries its own JSON implementation instead of `serde_json`. The model is
//! deliberately small: a [`Json`] tree, a deterministic pretty-printer
//! ([`Json::render`]) and a strict recursive-descent parser
//! ([`Json::parse`]). Objects preserve insertion order so emitted documents
//! are byte-stable across runs.
//!
//! Numbers carry their integerness: unsigned integers ([`Json::Uint`], any
//! `u64` — seeds and counters stay exact at full range) are kept apart from
//! floats ([`Json::Num`], printed with Rust's shortest-round-trip
//! formatting), so `parse ∘ render = identity` holds for every finite value
//! the emitters produce. The parser classifies a number as `Uint` exactly
//! when its text is a plain non-negative integer that fits `u64`.
//!
//! ```
//! use dtn_bench::report::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("smoke")),
//!     ("seeds", Json::arr(vec![Json::uint(1), Json::uint(u64::MAX)])),
//! ]);
//! let text = doc.render();
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! assert_eq!(doc.get("name").and_then(Json::as_str), Some("smoke"));
//! ```

use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-integer (or negative / oversized) JSON number, as `f64`.
    Num(f64),
    /// A non-negative integer JSON number, exact over the full `u64` range.
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (and emitted).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A float value. Non-finite inputs render as `null` (JSON has no
    /// `NaN`/`inf`), which the schema validator then flags.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An unsigned integer value, exact over the full `u64` range.
    pub fn uint(v: u64) -> Json {
        Json::Uint(v)
    }

    /// An array value.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// An object value from `(key, value)` pairs, in order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number (integers above 2⁵³ lose
    /// precision in this view, as any `f64` consumer must accept).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Uint(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as an unsigned integer: any [`Json::Uint`], or a
    /// [`Json::Num`] that is a whole non-negative number within exact `f64`
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints the value (2-space indent, trailing newline) — the
    /// deterministic emitter the report files use.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's float Display is shortest-round-trip, so the
                    // parser recovers this exact f64. Integral floats get an
                    // explicit `.0` so the parser classifies them back as
                    // `Num`, never `Uint` — keeping parse ∘ render the
                    // identity at the `Json` level too.
                    if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Uint(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Strict: exactly one value, nothing but
    /// whitespace after it; errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Enforce the RFC 8259 number grammar before handing the text to Rust's
    // (more lenient) float parser: no leading `+`, no leading zeros, no bare
    // or trailing dot, no empty exponent. Anything this validator certifies
    // must also parse in every standard JSON consumer.
    if !is_json_number(text) {
        return Err(format!("bad number `{text}` at byte {start}"));
    }
    // A plain non-negative integer stays exact as a `Uint` (full u64
    // range); everything else — fractions, exponents, negatives, oversized
    // integers — is an f64 `Num`.
    if text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Uint(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

/// Whether `text` matches the JSON number grammar
/// `-? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?` exactly.
fn is_json_number(text: &str) -> bool {
    let b = text.as_bytes();
    let mut i = 0usize;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    // Integer part: `0` alone or a non-zero-led digit run.
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    // Optional fraction: a dot followed by at least one digit.
    if b.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(b.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    // Optional exponent: e/E, optional sign, at least one digit.
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !matches!(b.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    i == b.len()
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Surrogate pairs are not needed for this format's
                        // ASCII-dominated payloads; reject them loudly.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b'"')) {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if !matches!(bytes.get(*pos), Some(b':')) {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = Json::obj([
            ("a", Json::num(0.1 + 0.2)),
            ("b", Json::str("x \"y\" \\ z\nw")),
            (
                "c",
                Json::arr(vec![Json::Null, Json::Bool(true), Json::uint(9)]),
            ),
            ("empty_arr", Json::arr(vec![])),
            ("empty_obj", Json::obj::<String>([])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456, f64::MIN_POSITIVE] {
            let doc = Json::num(v);
            let back = Json::parse(&doc.render()).unwrap();
            assert_eq!(back.as_f64(), Some(v), "{v} must round-trip exactly");
        }
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::num(f64::NAN).render(), "null\n");
        assert_eq!(Json::num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    /// Only the RFC 8259 number grammar is accepted — what this parser
    /// certifies must also parse in every standard JSON consumer.
    #[test]
    fn parse_enforces_json_number_grammar() {
        for bad in ["+1", "01", "1.", ".5", "1e", "1e+", "-", "--1", "1.2.3"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        for good in ["0", "-0", "10", "0.5", "-1.25e-3", "2E+8", "1e999"] {
            assert!(Json::parse(good).is_ok(), "`{good}` must parse");
        }
    }

    #[test]
    fn u64_accessor_guards_range() {
        assert_eq!(Json::num(7.0).as_u64(), Some(7));
        assert_eq!(Json::num(7.5).as_u64(), None);
        assert_eq!(Json::num(-1.0).as_u64(), None);
        assert_eq!(Json::uint(u64::MAX).as_u64(), Some(u64::MAX));
    }

    /// Full-range u64 values (e.g. a seed of u64::MAX) survive emit → parse
    /// exactly; integral floats keep their `.0` and stay floats.
    #[test]
    fn uints_round_trip_at_full_range() {
        for v in [0, 1, 2u64.pow(53) + 1, u64::MAX] {
            let back = Json::parse(&Json::uint(v).render()).unwrap();
            assert_eq!(back.as_u64(), Some(v), "{v} must stay exact");
        }
        let f = Json::num(1000.0);
        assert_eq!(f.render(), "1000.0\n");
        assert_eq!(Json::parse(&f.render()).unwrap(), f);
        // Oversized integer text degrades to f64 rather than erroring.
        let big = Json::parse("18446744073709551616").unwrap();
        assert!(matches!(big, Json::Num(_)));
    }
}
