//! Run records, multi-seed aggregation and cell summaries.
//!
//! A [`RunRecord`] is the provenance-complete result of one executed cell:
//! the canonical `(scenario, workload, protocol, seed, duration)` identity
//! (the same injective encodings the scenario cache keys on, via
//! [`RunSpec::cell_key`]), the run's [`StatsSnapshot`] and its wall-clock
//! cost. A [`ReportSpec`] is an ordered collection of records under a title;
//! [`ReportSpec::cells`] groups them across seeds into [`CellSummary`]s
//! carrying per-metric statistics ([`MetricSummary`]: mean, sample stddev,
//! min, max and a 95 % normal-approximation confidence interval).
//!
//! ```
//! use dtn_bench::report::{ReportSpec, RunRecord};
//! use dtn_bench::{run_spec, ProtocolSpec, RunSpec, ScenarioCache};
//!
//! let cache = ScenarioCache::new();
//! let spec = RunSpec::new("EER", 8, ProtocolSpec::parse("eer").unwrap())
//!     .with_duration(300.0);
//! let mut report = ReportSpec::new("doc example");
//! for seed in 1..=2 {
//!     let ps = cache.get_spec(&spec.scenario, &spec.workload, seed, spec.duration);
//!     let stats = run_spec(&cache, &spec, seed);
//!     report.push(RunRecord::capture(&spec, &ps, seed, &stats, 0.0));
//! }
//! let cells = report.cells();
//! assert_eq!(cells.len(), 1, "two seeds of one spec fold into one cell");
//! assert_eq!(cells[0].seeds, vec![1, 2]);
//! assert!(cells[0].metric("delivery_ratio").unwrap().mean >= 0.0);
//! ```

use super::metrics::{metric, MetricDef, METRICS};
use crate::runner::{RunOutput, RunSpec};
use crate::scenario::BuiltScenario;
use dtn_sim::{LatencyHistogram, MetricPoint, SimStats, StatsSnapshot, TimeSeries};

/// Format version stamped into every emitted document; bump when the field
/// set changes shape. Version 2 added the optional per-record time-series
/// and latency-histogram sections (probe outputs); version 3 the optional
/// `artifact` path of a recorded TRACE/1.0 event log.
pub const SCHEMA_VERSION: u32 = 3;

/// Schema name stamped into report documents.
pub const REPORT_SCHEMA: &str = "cen-dtn.report";

/// Schema name stamped into bench-trajectory documents
/// (`BENCH_shootout.json`).
pub const BENCH_SCHEMA: &str = "cen-dtn.bench";

/// One executed `(spec, seed)` cell with full provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Row label the producing binary assigned (series name).
    pub series: String,
    /// Canonical scenario spec (`ScenarioSpec`'s `Display`), reproducible as
    /// a `--scenario` argument.
    pub scenario: String,
    /// Canonical workload spec (`WorkloadSpec`'s `Display`).
    pub workload: String,
    /// Canonical protocol spec (`ProtocolSpec`'s `Display`), reproducible as
    /// a `--protocol` argument.
    pub protocol: String,
    /// Mobility/traffic seed of this run.
    pub seed: u64,
    /// Resolved node count (for trace replay, the recording's).
    pub n_nodes: u32,
    /// Resolved horizon in seconds.
    pub duration: f64,
    /// Injective full-cell identity from [`RunSpec::cell_key`] (includes the
    /// seed).
    pub cell: String,
    /// [`RunRecord::cell`] with the seed elided — the identity multi-seed
    /// aggregation groups by.
    pub group: String,
    /// The run's scalar counters.
    pub stats: StatsSnapshot,
    /// Host wall-clock seconds the run took.
    pub wall_s: f64,
    /// Sampled delivery/overhead/occupancy curve, when a
    /// [`ProbeSpec::TimeSeries`](crate::ProbeSpec::TimeSeries) rode along.
    pub timeseries: Option<TimeSeries>,
    /// Latency histogram with exact percentiles, when a
    /// [`ProbeSpec::LatencyHist`](crate::ProbeSpec::LatencyHist) rode along.
    pub latency: Option<LatencyHistogram>,
    /// Path of the TRACE/1.0 artifact this run recorded (or was replayed
    /// from), when a [`ProbeSpec::EventLog`](crate::ProbeSpec::EventLog)
    /// rode along. Non-semantic provenance, like [`RunRecord::wall_s`]:
    /// excluded from `dtndiff` comparison.
    pub artifact: Option<String>,
    /// `true` when this record was served from a persistent result store
    /// ([`CellStore`](crate::CellStore)) instead of being computed; its
    /// `wall_s` is then the serve time, not a simulation time. Non-semantic
    /// provenance, excluded from `dtndiff` comparison.
    pub cached: bool,
}

impl RunRecord {
    /// Captures the record for one executed cell: `spec` supplies the
    /// canonical identity, `ps` the resolved scenario shape, `stats` the
    /// result and `wall_s` the measured execution time. Probe outputs are
    /// absent; use [`RunRecord::capture_output`] for observed runs.
    pub fn capture(
        spec: &RunSpec,
        ps: &BuiltScenario,
        seed: u64,
        stats: &SimStats,
        wall_s: f64,
    ) -> Self {
        let key = spec.cell_key(seed);
        RunRecord {
            series: spec.series.clone(),
            scenario: spec.scenario.to_string(),
            workload: spec.workload.to_string(),
            protocol: spec.protocol.to_string(),
            seed,
            n_nodes: ps.n_nodes,
            duration: ps.scenario.trace.duration,
            cell: key.encoded(),
            group: key.group_encoded(),
            stats: stats.snapshot(),
            wall_s,
            timeseries: None,
            latency: None,
            artifact: None,
            cached: false,
        }
    }

    /// [`RunRecord::capture`] from a full [`RunOutput`], carrying any probe
    /// results (time series, latency histogram) into the record.
    pub fn capture_output(
        spec: &RunSpec,
        ps: &BuiltScenario,
        seed: u64,
        out: &RunOutput,
        wall_s: f64,
    ) -> Self {
        RunRecord {
            timeseries: out.timeseries.clone(),
            latency: out.latency.clone(),
            artifact: out.artifact.clone(),
            ..Self::capture(spec, ps, seed, &out.stats, wall_s)
        }
    }

    /// [`RunRecord::capture_output`] for a streaming run
    /// ([`crate::run_stream`]), where no [`BuiltScenario`] exists because the
    /// contact trace was never materialized: the resolved scenario shape
    /// (`n_nodes`, `duration`) is supplied explicitly. The cell identity is
    /// unchanged — a streaming run of a generated scenario is bit-identical
    /// to its materialized twin, so the two must share a key.
    pub fn capture_stream(
        spec: &RunSpec,
        n_nodes: u32,
        duration: f64,
        seed: u64,
        out: &RunOutput,
        wall_s: f64,
    ) -> Self {
        let key = spec.cell_key(seed);
        RunRecord {
            series: spec.series.clone(),
            scenario: spec.scenario.to_string(),
            workload: spec.workload.to_string(),
            protocol: spec.protocol.to_string(),
            seed,
            n_nodes,
            duration,
            cell: key.encoded(),
            group: key.group_encoded(),
            stats: out.stats.snapshot(),
            wall_s,
            timeseries: out.timeseries.clone(),
            latency: out.latency.clone(),
            artifact: out.artifact.clone(),
            cached: false,
        }
    }

    /// The value of the registered metric `key` for this run, if known.
    pub fn metric(&self, key: &str) -> Option<f64> {
        metric(key).map(|m| (m.extract)(self))
    }
}

/// Distribution statistics of one metric over a cell's seeds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricSummary {
    /// Arithmetic mean across runs.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator); `0` for a single run.
    pub stddev: f64,
    /// Smallest per-run value.
    pub min: f64,
    /// Largest per-run value.
    pub max: f64,
    /// Half-width of the 95 % confidence interval of the mean
    /// (`1.96 · stddev / √n`, normal approximation); `0` for a single run —
    /// and exactly `0` whenever every run agrees (stddev `0`).
    pub ci95: f64,
    /// Number of runs summarized.
    pub n: u32,
}

impl MetricSummary {
    /// Summarizes a non-empty slice of per-run values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize zero runs");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let stddev = if values.len() < 2 {
            0.0
        } else {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        MetricSummary {
            mean,
            stddev,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ci95: 1.96 * stddev / n.sqrt(),
            n: values.len() as u32,
        }
    }
}

/// One time point of a [`CellTimeSeries`]: cross-seed statistics of the
/// sampled curve metrics at time `t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TsPoint {
    /// Sample time in seconds.
    pub t: f64,
    /// Delivery ratio across seeds at `t`.
    pub delivery_ratio: MetricSummary,
    /// Overhead ratio across seeds at `t`.
    pub overhead_ratio: MetricSummary,
    /// Global buffer occupancy across seeds at `t`, in megabytes.
    pub buffered_mb: MetricSummary,
}

/// Cross-seed aggregate of a cell's sampled time series: the delivery /
/// overhead / occupancy curves, one [`MetricSummary`] per sample time.
/// Present only when *every* record of the cell carries a time series with
/// the same cadence; curves are truncated to the shortest seed's length.
#[derive(Clone, Debug, PartialEq)]
pub struct CellTimeSeries {
    /// Shared sampling cadence in seconds.
    pub dt: f64,
    /// Points in time order.
    pub points: Vec<TsPoint>,
}

impl CellTimeSeries {
    /// Aggregates the records' per-seed curves, or `None` when any record
    /// lacks one or cadences disagree.
    fn aggregate(runs: &[&RunRecord]) -> Option<Self> {
        let first = runs[0].timeseries.as_ref()?;
        if !runs
            .iter()
            .all(|r| r.timeseries.as_ref().is_some_and(|t| t.dt == first.dt))
        {
            return None;
        }
        let len = runs
            .iter()
            .map(|r| r.timeseries.as_ref().unwrap().samples.len())
            .min()
            .unwrap_or(0);
        let points = (0..len)
            .map(|i| {
                let at = |f: &dyn Fn(&dtn_sim::TsSample) -> f64| -> MetricSummary {
                    let values: Vec<f64> = runs
                        .iter()
                        .map(|r| f(&r.timeseries.as_ref().unwrap().samples[i]))
                        .collect();
                    MetricSummary::of(&values)
                };
                TsPoint {
                    t: first.samples[i].t,
                    delivery_ratio: at(&|s| s.delivery_ratio()),
                    overhead_ratio: at(&|s| s.overhead_ratio()),
                    buffered_mb: at(&|s| s.buffered_bytes as f64 / (1024.0 * 1024.0)),
                }
            })
            .collect();
        Some(CellTimeSeries {
            dt: first.dt,
            points,
        })
    }
}

/// Cross-seed aggregate of one cell family: every record sharing a
/// [`RunRecord::group`], summarized per registered metric.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSummary {
    /// The shared group identity ([`RunRecord::group`]).
    pub group: String,
    /// Series label (from the first record of the group).
    pub series: String,
    /// Canonical scenario spec.
    pub scenario: String,
    /// Canonical workload spec.
    pub workload: String,
    /// Canonical protocol spec.
    pub protocol: String,
    /// Resolved node count.
    pub n_nodes: u32,
    /// Resolved horizon in seconds.
    pub duration: f64,
    /// Seeds aggregated, ascending.
    pub seeds: Vec<u64>,
    /// Per-metric statistics, in registry order — one entry per *measured*
    /// [`METRICS`] element. Probe-dependent metrics (latency percentiles,
    /// peak occupancy) are omitted when the cell's records lack the probe:
    /// an unmeasured value is absent, never a fabricated zero.
    pub metrics: Vec<(&'static str, MetricSummary)>,
    /// Cross-seed aggregate of the sampled time series, when every record
    /// of the cell carries one at a shared cadence.
    pub timeseries: Option<CellTimeSeries>,
}

impl CellSummary {
    /// The summary of the registered metric `key`, if present.
    pub fn metric(&self, key: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|(k, _)| *k == key).map(|(_, s)| s)
    }

    /// Bridges the summary to the legacy [`MetricPoint`] (headline means),
    /// so figure tables and plots keep working off the report pipeline.
    pub fn point(&self) -> MetricPoint {
        let mean = |key: &str| self.metric(key).map_or(0.0, |m| m.mean);
        MetricPoint {
            delivery_ratio: mean("delivery_ratio"),
            latency: mean("latency_s"),
            goodput: mean("goodput"),
            relayed: mean("relayed"),
            control_mb: mean("control_mb"),
            runs: self.seeds.len() as u32,
        }
    }
}

/// A titled, ordered collection of run records — the unit every emitter
/// (JSON, CSV, Markdown, console tables) consumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReportSpec {
    /// Human title (figure caption, ablation name, ...).
    pub title: String,
    /// Records in execution-plan order.
    pub records: Vec<RunRecord>,
}

impl ReportSpec {
    /// An empty report under `title`.
    pub fn new(title: impl Into<String>) -> Self {
        ReportSpec {
            title: title.into(),
            records: Vec::new(),
        }
    }

    /// Appends one record.
    pub fn push(&mut self, record: RunRecord) {
        self.records.push(record);
    }

    /// Groups the records by [`RunRecord::group`] (first-appearance order)
    /// and summarizes every registered metric per group. Records of one
    /// group are seed-sorted before summarizing, so the output is
    /// independent of insertion order. One indexed pass over the records —
    /// linear in `records × metrics`, whatever the group count.
    pub fn cells(&self) -> Vec<CellSummary> {
        let mut index: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        let mut groups: Vec<Vec<&RunRecord>> = Vec::new();
        for r in &self.records {
            let i = *index.entry(r.group.as_str()).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[i].push(r);
        }
        groups
            .into_iter()
            .map(|mut runs| {
                runs.sort_by_key(|r| r.seed);
                let first = runs[0];
                let metrics = METRICS
                    .iter()
                    .filter(|m| runs.iter().all(|r| m.is_available(r)))
                    .map(|m: &MetricDef| {
                        let values: Vec<f64> = runs.iter().map(|r| (m.extract)(r)).collect();
                        (m.key, MetricSummary::of(&values))
                    })
                    .collect();
                CellSummary {
                    group: first.group.clone(),
                    series: first.series.clone(),
                    scenario: first.scenario.clone(),
                    workload: first.workload.clone(),
                    protocol: first.protocol.clone(),
                    n_nodes: first.n_nodes,
                    duration: first.duration,
                    seeds: runs.iter().map(|r| r.seed).collect(),
                    metrics,
                    timeseries: CellTimeSeries::aggregate(&runs),
                }
            })
            .collect()
    }

    /// Total wall-clock seconds across all records.
    ///
    /// For mixed hit/miss runs this mixes simulation time (computed
    /// records) with file-read time (records served from a result store);
    /// [`ReportSpec::computed_wall_s`] and [`ReportSpec::served_from_store`]
    /// split the two so warm and cold trajectories stay comparable.
    pub fn wall_s_total(&self) -> f64 {
        self.records.iter().map(|r| r.wall_s).sum()
    }

    /// Wall-clock seconds spent actually computing: the `wall_s` sum over
    /// records *not* served from a result store. Informational, like
    /// [`ReportSpec::wall_s_total`].
    pub fn computed_wall_s(&self) -> f64 {
        // fold, not sum: an all-hits report must print 0.0, and the empty
        // f64 Sum identity is -0.0.
        self.records
            .iter()
            .filter(|r| !r.cached)
            .fold(0.0, |acc, r| acc + r.wall_s)
    }

    /// How many records were served from a persistent result store instead
    /// of being computed ([`RunRecord::cached`]).
    pub fn served_from_store(&self) -> usize {
        self.records.iter().filter(|r| r.cached).count()
    }

    /// The execution-plan view: one legacy [`MetricPoint`] per consecutive
    /// `seeds_per_spec` records — i.e. one point per `RunSpec`, in spec
    /// order, exactly as `run_matrix` reduces. Positional consumers (the
    /// figure panels, which index points by `spec × node count`) must use
    /// this rather than [`ReportSpec::cells`]: cells merge records sharing
    /// a group identity, and distinct specs *can* share one — trace replay
    /// ignores the node count, so every sweep point of a trace family is
    /// the same cell.
    ///
    /// # Panics
    /// Panics if `seeds_per_spec` is zero or does not divide the record
    /// count (the records did not come from a
    /// `seeds_per_spec`-seeded matrix).
    pub fn points(&self, seeds_per_spec: usize) -> Vec<MetricPoint> {
        assert!(
            seeds_per_spec > 0 && self.records.len().is_multiple_of(seeds_per_spec),
            "{} records cannot be {} runs per spec",
            self.records.len(),
            seeds_per_spec
        );
        self.records
            .chunks(seeds_per_spec)
            .map(|runs| {
                MetricPoint::from_snapshots(&runs.iter().map(|r| r.stats).collect::<Vec<_>>())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn synthetic_record(series: &str, seed: u64, delivered: u64) -> RunRecord {
        RunRecord {
            series: series.into(),
            scenario: "paper:40".into(),
            workload: "paper".into(),
            protocol: "eer".into(),
            seed,
            n_nodes: 40,
            duration: 1000.0,
            cell: format!("scenario=paper|workload=paper|protocol=eer+{series}|seed={seed}|dur=0"),
            group: format!("scenario=paper|workload=paper|protocol=eer+{series}|dur=0"),
            stats: StatsSnapshot {
                created: 100,
                delivered,
                relayed: delivered * 3,
                latency_sum: delivered as f64 * 120.0,
                hops_sum: delivered * 2,
                control_bytes: 1024 * 1024,
                ..Default::default()
            },
            wall_s: 0.25,
            timeseries: None,
            latency: None,
            artifact: None,
            cached: false,
        }
    }

    #[test]
    fn summary_statistics_are_correct() {
        let s = MetricSummary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
        assert!(
            (s.stddev - 1.0).abs() < 1e-12,
            "sample stddev of 1,2,3 is 1"
        );
        assert!((s.ci95 - 1.96 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_run_has_zero_spread() {
        let s = MetricSummary::of(&[0.7]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 0.7);
        assert_eq!(s.max, 0.7);
    }

    #[test]
    fn cells_group_by_identity_not_order() {
        let mut report = ReportSpec::new("t");
        // Interleave two series and push seeds out of order.
        report.push(synthetic_record("a", 2, 60));
        report.push(synthetic_record("b", 1, 40));
        report.push(synthetic_record("a", 1, 50));
        let cells = report.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].series, "a", "first-appearance order");
        assert_eq!(cells[0].seeds, vec![1, 2], "seed-sorted inside the cell");
        // Unprobed records: every always-measured metric, nothing more.
        let measured = METRICS.iter().filter(|m| m.available.is_none()).count();
        assert_eq!(cells[0].metrics.len(), measured);
        let dr = cells[0].metric("delivery_ratio").unwrap();
        assert!((dr.mean - 0.55).abs() < 1e-12);
        assert_eq!(dr.min, 0.5);
        assert_eq!(dr.max, 0.6);
    }

    /// Regression (trace replay in the figure binaries): when distinct
    /// sweep specs share a group identity — a trace scenario ignores the
    /// node count, so every sweep point is the same cell — `cells()` merges
    /// them, but the positional `points()` view must still return one point
    /// per spec so `spec × node count` indexing cannot go out of bounds.
    #[test]
    fn points_stay_positional_when_cells_merge() {
        let mut report = ReportSpec::new("t");
        // Same series and group for both "node counts" of one trace spec.
        report.push(synthetic_record("a", 1, 50));
        report.push(synthetic_record("a", 1, 60));
        assert_eq!(report.cells().len(), 1, "identical cells merge");
        let points = report.points(1);
        assert_eq!(points.len(), 2, "but the plan view is one point per spec");
        assert!((points[0].delivery_ratio - 0.5).abs() < 1e-12);
        assert!((points[1].delivery_ratio - 0.6).abs() < 1e-12);
    }

    /// Cells aggregate time series only when every seed carries one at a
    /// shared cadence; the aggregate truncates to the shortest curve.
    #[test]
    fn cell_timeseries_requires_matching_cadences() {
        use dtn_sim::{TimeSeries, TsSample};
        let ts = |dt: f64, n: u64, delivered: u64| TimeSeries {
            dt,
            samples: (0..n)
                .map(|k| TsSample {
                    t: k as f64 * dt,
                    created: 10,
                    delivered: delivered * k / n.max(1),
                    ..Default::default()
                })
                .collect(),
        };
        let mut a = synthetic_record("a", 1, 50);
        a.timeseries = Some(ts(60.0, 5, 4));
        let mut b = synthetic_record("a", 2, 60);
        b.timeseries = Some(ts(60.0, 3, 6));

        let mut report = ReportSpec::new("t");
        report.push(a.clone());
        report.push(b.clone());
        let cell_ts = report.cells()[0].timeseries.clone().expect("aggregated");
        assert_eq!(cell_ts.dt, 60.0);
        assert_eq!(cell_ts.points.len(), 3, "truncated to the shortest curve");
        assert_eq!(cell_ts.points[0].delivery_ratio.n, 2);

        // A cadence mismatch (or a missing series) disables the aggregate.
        let mut c = b.clone();
        c.seed = 3;
        c.timeseries = Some(ts(30.0, 3, 6));
        let mut mixed = ReportSpec::new("t");
        mixed.push(a.clone());
        mixed.push(c);
        assert!(mixed.cells()[0].timeseries.is_none());

        let mut d = b;
        d.seed = 4;
        d.timeseries = None;
        let mut partial = ReportSpec::new("t");
        partial.push(a);
        partial.push(d);
        assert!(partial.cells()[0].timeseries.is_none());
    }

    #[test]
    fn point_bridges_headline_means() {
        let mut report = ReportSpec::new("t");
        report.push(synthetic_record("a", 1, 50));
        report.push(synthetic_record("a", 2, 60));
        let p = report.cells()[0].point();
        assert_eq!(p.runs, 2);
        assert!((p.delivery_ratio - 0.55).abs() < 1e-12);
        assert!((p.latency - 120.0).abs() < 1e-12);
        assert!((p.control_mb - 1.0).abs() < 1e-12);
    }
}
