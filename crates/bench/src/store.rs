//! Persistent, content-addressed result store: `(cell_key, seed) → RunRecord`.
//!
//! Every experiment in the stack is addressed by an injective, canonical
//! cell key ([`RunSpec::cell_key`](crate::RunSpec::cell_key) — scenario,
//! workload, protocol, probes, buffer, community source, seed and horizon,
//! floats by bit pattern). Because the key is injective over everything
//! that shapes a run's result, and runs are bit-deterministic, a record
//! filed under its key can be *served* instead of recomputed — across
//! processes and code revisions. The [`CellStore`] is that durable memo:
//!
//! * **Layout** — a configurable root (default [`DEFAULT_STORE_ROOT`])
//!   holding a `manifest.json` plus 256 fan-out shard directories
//!   (`<2-hex>/<16-hex>.json`, FNV-1a 64 over the encoded cell key). Key
//!   collisions are benign: every load re-checks the stored cell key, so a
//!   colliding entry is a miss that gets overwritten, never wrong data.
//! * **Entry format** — each entry is a complete one-record
//!   `cen-dtn.report` document (the existing schema-versioned JSON model),
//!   with the document title bound to the cell key. `reportcheck` validates
//!   entries unmodified.
//! * **Publication** — write-to-temp then [`std::fs::rename`], so readers
//!   never observe a half-written entry and concurrent producers of the
//!   same cell (which compute identical records) settle on a whole file.
//! * **Admission** — a record is served only after passing the full
//!   `reportcheck` validation ([`validate_document`]) *and* identity checks
//!   (stored cell key == requested key, stored seed == requested seed). A
//!   truncated, bit-flipped or otherwise invalid entry is a miss: the cell
//!   is recomputed and republished, never served.
//! * **Maintenance** — the `dtnstore` binary wraps [`CellStore::stats`],
//!   [`CellStore::verify`] and [`CellStore::gc`] (LRU by access time).
//!
//! Served records are marked [`RunRecord::cached`] — informational
//! provenance like `wall_s`, excluded from `dtndiff` comparison — and get
//! their `wall_s` restamped with the (file-read) serve time, so warm-sweep
//! trajectories report what the host actually paid.

use crate::report::{validate_document, ReportSpec, RunRecord, SCHEMA_VERSION};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Default store root, relative to the working directory.
pub const DEFAULT_STORE_ROOT: &str = "results/store";

/// Schema name stamped into the store manifest.
pub const STORE_SCHEMA: &str = "cen-dtn.store";

/// Store layout version; bump when the directory layout or entry binding
/// changes shape (record contents are versioned separately by the report
/// schema's `SCHEMA_VERSION`).
pub const STORE_VERSION: u32 = 1;

/// Census of a store: entry count and payload bytes (manifest excluded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of entry files.
    pub entries: usize,
    /// Total entry bytes.
    pub bytes: u64,
}

/// What one [`CellStore::gc`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entries evicted (least recently accessed first).
    pub evicted: usize,
    /// Bytes freed by the evictions.
    pub freed_bytes: u64,
    /// Entry bytes remaining after the pass.
    pub remaining_bytes: u64,
}

/// A persistent, content-addressed `(cell_key, seed) → RunRecord` store.
/// See the [module docs](self) for layout and admission rules.
pub struct CellStore {
    root: PathBuf,
}

impl CellStore {
    /// Opens (creating if needed) the store at `root`. A fresh root gets a
    /// manifest recording the store layout version, the record schema
    /// version and the producing crate revision; an existing root's
    /// manifest is validated — a root claiming a different store layout is
    /// refused rather than silently misread.
    pub fn open(root: &Path) -> Result<CellStore, String> {
        fs::create_dir_all(root)
            .map_err(|e| format!("cannot create store root {}: {e}", root.display()))?;
        let store = CellStore {
            root: root.to_path_buf(),
        };
        let manifest = store.manifest_path();
        if manifest.exists() {
            store.validate_manifest(&manifest)?;
        } else {
            store.write_manifest(&manifest)?;
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the store manifest.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    fn write_manifest(&self, path: &Path) -> Result<(), String> {
        use crate::report::json::Json;
        let doc = Json::obj([
            ("schema", Json::str(STORE_SCHEMA)),
            ("version", Json::uint(u64::from(STORE_VERSION))),
            (
                "record_schema",
                Json::str(crate::report::record::REPORT_SCHEMA),
            ),
            ("record_version", Json::uint(u64::from(SCHEMA_VERSION))),
            ("producer", Json::str(env!("CARGO_PKG_VERSION"))),
        ])
        .render();
        write_via_rename(path, &doc)
    }

    fn validate_manifest(&self, path: &Path) -> Result<(), String> {
        use crate::report::json::Json;
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("manifest {}: {e}", path.display()))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == STORE_SCHEMA => {}
            other => {
                return Err(format!(
                    "{} is not a {STORE_SCHEMA} manifest (schema: {other:?})",
                    path.display()
                ))
            }
        }
        match doc.get("version").and_then(Json::as_u64) {
            Some(v) if v == u64::from(STORE_VERSION) => {}
            other => {
                return Err(format!(
                    "{}: unsupported store version {other:?} (expected {STORE_VERSION})",
                    path.display()
                ))
            }
        }
        // The producer revision and record schema version are provenance,
        // not compatibility gates: admission validates every entry on load,
        // so records from any revision that pass are servable.
        Ok(())
    }

    /// The entry path an encoded cell key files under: a 256-way fan-out on
    /// the key hash, so city-scale sweeps never pile every entry into one
    /// directory. Distinct keys can share a path only on a 64-bit hash
    /// collision, which [`CellStore::serve`] detects by re-checking the
    /// stored key.
    pub fn entry_path(&self, cell: &str) -> PathBuf {
        let h = fnv1a64(cell.as_bytes());
        self.root
            .join(format!("{:02x}", h >> 56))
            .join(format!("{h:016x}.json"))
    }

    /// Admission: validates one entry's text exactly as `reportcheck` would
    /// (schema, versions, finiteness, probe-section invariants), then binds
    /// it to its identity — a one-record document whose title equals the
    /// record's cell key. Returns the record on success.
    pub fn admit(text: &str) -> Result<RunRecord, String> {
        validate_document(text)?;
        let report = ReportSpec::from_json_str(text)?;
        let [record] = report.records.as_slice() else {
            return Err(format!(
                "store entry must hold exactly one record, found {}",
                report.records.len()
            ));
        };
        if record.cell != report.title {
            return Err(format!(
                "entry title `{}` does not match its record's cell `{}`",
                report.title, record.cell
            ));
        }
        Ok(record.clone())
    }

    /// Serves the record for `(cell, seed)` when a valid entry exists:
    /// missing, unreadable, corrupt, mis-keyed or otherwise inadmissible
    /// entries are all misses (`None`), never errors — the caller recomputes
    /// and republishes. A served record is marked [`RunRecord::cached`] with
    /// `wall_s` restamped to the serve (file-read) time.
    pub fn serve(&self, cell: &str, seed: u64) -> Option<RunRecord> {
        let t0 = std::time::Instant::now();
        let text = fs::read_to_string(self.entry_path(cell)).ok()?;
        let mut record = Self::admit(&text).ok()?;
        if record.cell != cell || record.seed != seed {
            return None;
        }
        record.cached = true;
        record.wall_s = t0.elapsed().as_secs_f64();
        Some(record)
    }

    /// Publishes `record` under its cell key, atomically (write-to-temp
    /// then rename). Records that were themselves served from a store
    /// ([`RunRecord::cached`]) are skipped — republishing one would launder
    /// its serve-time `wall_s` into a computed-looking entry.
    pub fn publish(&self, record: &RunRecord) -> Result<(), String> {
        if record.cached {
            return Ok(());
        }
        let mut doc = ReportSpec::new(record.cell.clone());
        doc.push(record.clone());
        write_via_rename(&self.entry_path(&record.cell), &doc.to_json_string())
    }

    /// Every entry path currently in the store (manifest excluded), in
    /// deterministic (shard, name) order.
    pub fn entries(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let Ok(shards) = fs::read_dir(&self.root) else {
            return out;
        };
        let mut dirs: Vec<PathBuf> = shards
            .flatten()
            .map(|d| d.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let Ok(files) = fs::read_dir(&dir) else {
                continue;
            };
            let mut paths: Vec<PathBuf> = files
                .flatten()
                .map(|f| f.path())
                .filter(|p| p.extension().is_some_and(|e| e == "json"))
                .collect();
            paths.sort();
            out.extend(paths);
        }
        out
    }

    /// Entry count and total payload bytes.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for path in self.entries() {
            stats.entries += 1;
            stats.bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
        stats
    }

    /// Validates every entry through [`CellStore::admit`] plus the layout
    /// invariant (an entry must live at the path its record's cell key
    /// hashes to). Returns the failures; an empty vector means the store is
    /// fully admissible.
    pub fn verify(&self) -> Vec<(PathBuf, String)> {
        let mut failures = Vec::new();
        for path in self.entries() {
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    failures.push((path, format!("cannot read: {e}")));
                    continue;
                }
            };
            match Self::admit(&text) {
                Ok(record) => {
                    let expected = self.entry_path(&record.cell);
                    if expected != path {
                        failures.push((
                            path,
                            format!("misfiled: cell hashes to {}", expected.display()),
                        ));
                    }
                }
                Err(e) => failures.push((path, e)),
            }
        }
        failures
    }

    /// Evicts least-recently-accessed entries until the store's payload is
    /// at most `max_bytes` (access time falls back to modification time on
    /// filesystems that do not track atime).
    pub fn gc(&self, max_bytes: u64) -> GcOutcome {
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = self
            .entries()
            .into_iter()
            .filter_map(|path| {
                let meta = fs::metadata(&path).ok()?;
                let used = meta
                    .accessed()
                    .or_else(|_| meta.modified())
                    .unwrap_or(SystemTime::UNIX_EPOCH);
                Some((path, meta.len(), used))
            })
            .collect();
        entries.sort_by_key(|(_, _, used)| *used);
        let mut remaining: u64 = entries.iter().map(|(_, len, _)| len).sum();
        let mut out = GcOutcome::default();
        for (path, len, _) in entries {
            if remaining <= max_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                out.evicted += 1;
                out.freed_bytes += len;
                remaining -= len;
            }
        }
        out.remaining_bytes = remaining;
        out
    }
}

/// Resolves the shared `--store DIR | --no-store` CLI contract: `None` when
/// disabled, otherwise the store at `dir` (default [`DEFAULT_STORE_ROOT`]).
/// A store that fails to open degrades to a cold run with a warning —
/// memoization is an optimization, never a prerequisite.
pub fn resolve_store(dir: Option<&str>, disabled: bool) -> Option<CellStore> {
    if disabled {
        return None;
    }
    let root = dir.unwrap_or(DEFAULT_STORE_ROOT);
    match CellStore::open(Path::new(root)) {
        Ok(store) => Some(store),
        Err(e) => {
            eprintln!("warning: result store at {root} unavailable, running cold: {e}");
            None
        }
    }
}

/// FNV-1a 64 — the same cheap, dependency-free hash the trace fingerprint
/// uses; collisions are tolerated by design (loads re-check the key).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `text` to `path` atomically: temp file in the target directory,
/// then rename. Readers never observe a partial entry.
fn write_via_rename(path: &Path, text: &str) -> Result<(), String> {
    crate::report::ensure_parent(path).map_err(|e| e.to_string())?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        format!("publishing {}: {e}", path.display())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::StatsSnapshot;

    fn tmp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtn_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn record(seed: u64) -> RunRecord {
        let cell = format!("scenario=paper:n=8|workload=paper|protocol=eer|seed={seed}|dur=0");
        let group = "scenario=paper:n=8|workload=paper|protocol=eer|dur=0".to_string();
        RunRecord {
            series: "EER".into(),
            scenario: "paper:n=8".into(),
            workload: "paper".into(),
            protocol: "eer".into(),
            seed,
            n_nodes: 8,
            duration: 400.0,
            cell,
            group,
            stats: StatsSnapshot {
                created: 40,
                delivered: 20 + seed,
                relayed: 60,
                latency_sum: 1234.5,
                hops_sum: 44,
                control_bytes: 4096,
                ..Default::default()
            },
            wall_s: 0.25,
            timeseries: None,
            latency: None,
            artifact: None,
            cached: false,
        }
    }

    #[test]
    fn publish_then_serve_round_trips() {
        let root = tmp_store("roundtrip");
        let store = CellStore::open(&root).unwrap();
        let rec = record(1);
        store.publish(&rec).unwrap();

        let served = store.serve(&rec.cell, 1).expect("published entry serves");
        assert!(served.cached, "served records are marked cached");
        // Identical on every field except the non-semantic serve provenance.
        let mut normalized = served.clone();
        normalized.cached = false;
        normalized.wall_s = rec.wall_s;
        assert_eq!(normalized, rec);

        // Wrong seed or unknown cell: a miss, not an error.
        assert!(store.serve(&rec.cell, 2).is_none());
        assert!(store.serve("scenario=other|seed=1|dur=0", 1).is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn served_records_are_never_republished() {
        let root = tmp_store("norepub");
        let store = CellStore::open(&root).unwrap();
        store.publish(&record(1)).unwrap();
        let served = store.serve(&record(1).cell, 1).unwrap();
        let before = std::fs::read_to_string(store.entry_path(&served.cell)).unwrap();
        store.publish(&served).unwrap();
        let after = std::fs::read_to_string(store.entry_path(&served.cell)).unwrap();
        assert_eq!(before, after, "cached records must not overwrite entries");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_entries_are_rejected_not_served() {
        let root = tmp_store("corrupt");
        let store = CellStore::open(&root).unwrap();
        let rec = record(3);
        store.publish(&rec).unwrap();
        let path = store.entry_path(&rec.cell);

        // Truncation: half the document is not a document.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(
            store.serve(&rec.cell, 3).is_none(),
            "truncated entry served"
        );
        assert_eq!(store.verify().len(), 1, "verify must flag the truncation");

        // A bit flip that keeps the JSON well-formed but breaks a value.
        store.publish(&rec).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replace("\"delivered\": 23", "\"delivered\": 1e999");
        assert_ne!(flipped, text, "tamper target must exist");
        std::fs::write(&path, flipped).unwrap();
        assert!(
            store.serve(&rec.cell, 3).is_none(),
            "non-finite entry served"
        );
        assert_eq!(store.verify().len(), 1);

        // An entry whose stored identity disagrees with its requested key.
        store.publish(&rec).unwrap();
        let other = record(4);
        std::fs::write(&path, {
            let mut doc = ReportSpec::new(other.cell.clone());
            doc.push(other.clone());
            doc.to_json_string()
        })
        .unwrap();
        assert!(
            store.serve(&rec.cell, 3).is_none(),
            "hash-collision-shaped entry served"
        );
        // Republishing heals the slot and serving works again.
        store.publish(&rec).unwrap();
        assert!(store.serve(&rec.cell, 3).is_some());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn manifest_guards_the_root() {
        let root = tmp_store("manifest");
        {
            let store = CellStore::open(&root).unwrap();
            assert!(store.manifest_path().exists());
        }
        // Re-opening an existing store validates and succeeds.
        assert!(CellStore::open(&root).is_ok());
        // A root claiming a different layout is refused.
        std::fs::write(
            root.join("manifest.json"),
            "{\n  \"schema\": \"cen-dtn.store\",\n  \"version\": 999\n}\n",
        )
        .unwrap();
        assert!(CellStore::open(&root).is_err());
        std::fs::write(root.join("manifest.json"), "not json").unwrap();
        assert!(CellStore::open(&root).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stats_and_gc_evict_lru() {
        let root = tmp_store("gc");
        let store = CellStore::open(&root).unwrap();
        for seed in 1..=4 {
            store.publish(&record(seed)).unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 4);
        assert!(stats.bytes > 0);

        // Touch seed 4's entry so it is the most recently used, then shrink.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(store.serve(&record(4).cell, 4).is_some());
        let keep = stats.bytes / 3;
        let out = store.gc(keep);
        assert!(out.evicted >= 1, "gc must evict under a tight budget");
        assert!(out.remaining_bytes <= keep);
        assert_eq!(store.stats().bytes, out.remaining_bytes);
        // A full wipe leaves a valid, empty store.
        let out = store.gc(0);
        assert_eq!(out.remaining_bytes, 0);
        assert_eq!(store.stats().entries, 0);
        assert!(CellStore::open(&root).is_ok(), "manifest survives gc");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn entry_paths_fan_out_and_resolve_store_degrades() {
        let root = tmp_store("fanout");
        let store = CellStore::open(&root).unwrap();
        let a = store.entry_path("cell-a");
        let b = store.entry_path("cell-b");
        assert_ne!(a, b);
        assert_eq!(a, store.entry_path("cell-a"), "paths are deterministic");
        assert!(a.starts_with(&root));

        assert!(resolve_store(None, true).is_none(), "--no-store wins");
        let good = resolve_store(Some(root.to_str().unwrap()), false);
        assert!(good.is_some());
        // An unopenable root (a file in the way) degrades to None.
        let blocked = root.join("blocked");
        std::fs::write(&blocked, "x").unwrap();
        assert!(resolve_store(Some(blocked.to_str().unwrap()), false).is_none());
        std::fs::remove_dir_all(&root).ok();
    }
}
