//! Paper-scenario construction and memoisation.

use dtn_mobility::scenario::{Scenario, ScenarioConfig};
use dtn_sim::{MessageSpec, TrafficConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One fully built `(n_nodes, seed)` experiment input: the contact trace,
/// community ground truth and message workload.
#[derive(Clone)]
pub struct PaperScenario {
    /// The mobility/contact scenario.
    pub scenario: Arc<Scenario>,
    /// The message workload for this seed.
    pub workload: Arc<Vec<MessageSpec>>,
    /// Node count.
    pub n_nodes: u32,
    /// Seed used for mobility and traffic.
    pub seed: u64,
}

impl PaperScenario {
    /// Builds the §V-A scenario for `n_nodes` nodes and `seed`.
    pub fn build(n_nodes: u32, seed: u64) -> Self {
        let cfg = ScenarioConfig::paper(n_nodes);
        let scenario = cfg.build(seed);
        let workload = TrafficConfig::paper(cfg.duration).generate(n_nodes, seed);
        PaperScenario {
            scenario: Arc::new(scenario),
            workload: Arc::new(workload),
            n_nodes,
            seed,
        }
    }

    /// A reduced variant (shorter horizon) used by Criterion benches so a
    /// bench iteration stays sub-second.
    pub fn build_scaled(n_nodes: u32, seed: u64, duration: f64) -> Self {
        let cfg = ScenarioConfig {
            duration,
            ..ScenarioConfig::paper(n_nodes)
        };
        let scenario = cfg.build(seed);
        let workload = TrafficConfig::paper(duration).generate(n_nodes, seed);
        PaperScenario {
            scenario: Arc::new(scenario),
            workload: Arc::new(workload),
            n_nodes,
            seed,
        }
    }
}

/// Thread-safe memo of built scenarios, so every protocol and λ value runs
/// against the *identical* contact process for a given `(n, seed)`.
#[derive(Default)]
pub struct ScenarioCache {
    map: Mutex<HashMap<(u32, u64), PaperScenario>>,
}

impl ScenarioCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the scenario for `(n_nodes, seed)`, building it on first use.
    pub fn get(&self, n_nodes: u32, seed: u64) -> PaperScenario {
        if let Some(s) = self.map.lock().unwrap().get(&(n_nodes, seed)) {
            return s.clone();
        }
        let built = PaperScenario::build(n_nodes, seed);
        self.map
            .lock()
            .unwrap()
            .entry((n_nodes, seed))
            .or_insert(built)
            .clone()
    }

    /// Number of cached scenarios.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_reuses_scenarios() {
        let cache = ScenarioCache::new();
        assert!(cache.is_empty());
        let a = cache.get(8, 1);
        let b = cache.get(8, 1);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a.scenario, &b.scenario));
        let c = cache.get(8, 2);
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&a.scenario, &c.scenario));
    }

    #[test]
    fn scaled_scenario_is_shorter() {
        let s = PaperScenario::build_scaled(8, 1, 500.0);
        assert_eq!(s.scenario.trace.duration, 500.0);
        assert!(s.workload.iter().all(|m| m.create_at.as_secs() < 500.0));
    }
}
