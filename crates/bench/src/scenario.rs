//! Scenario resolution and memoisation.
//!
//! A [`BuiltScenario`] is one fully materialised experiment input — contact
//! trace, community ground truth and message workload — built from a
//! `(ScenarioSpec, WorkloadSpec, seed, duration)` quadruple. The
//! [`ScenarioCache`] memoises builds under a [`ScenarioKey`] derived from
//! the *full* quadruple, so distinct scenario families with identical node
//! counts can never collide (the old `(n_nodes, seed, duration)` key could
//! not tell the paper's bus-city from anything else).

use dtn_mobility::scenario::Scenario;
use dtn_mobility::{ScenarioSpec, WorkloadSpec};
use dtn_sim::{ContactTrace, MessageSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default [`ScenarioCache`] capacity (built scenarios held at once). Big
/// enough that every paper figure's sweep — a handful of families × node
/// counts × seeds per family — stays fully memoised, small enough that a
/// million-cell matrix over many distinct scenario specs cannot grow memory
/// without bound.
pub const DEFAULT_SCENARIO_CACHE_CAP: usize = 64;

/// Cache identity of a built scenario — and, with
/// [`ScenarioKey::with_protocol`], of a full sweep cell. The canonical
/// encodings of the scenario and workload specs plus seed and resolved
/// horizon, optionally extended by a protocol encoding. Injective over
/// everything that shapes the build (and, for cell keys, the run).
///
/// The [`ScenarioCache`] memoises builds under the *protocol-agnostic* form
/// (scenario builds are shared across protocols); the runner derives the
/// protocol-qualified form per cell
/// ([`RunSpec::cell_key`](crate::RunSpec::cell_key)), so two differently
/// tuned variants of one protocol — e.g. `eer:lambda=4` vs `eer:lambda=16` —
/// can never collide in any map keyed by cells.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScenarioKey {
    scenario: String,
    workload: String,
    /// Canonical protocol encoding of the cell, empty for the
    /// protocol-agnostic scenario identity the build cache uses.
    protocol: String,
    seed: u64,
    /// Bit pattern of the resolved duration; `ScenarioKey::NATIVE` when
    /// the spec runs at its own native horizon (trace replay).
    duration_bits: u64,
}

impl ScenarioKey {
    /// Sentinel for "the spec's native horizon" (trace replay, where the
    /// duration is known only after loading the recording).
    const NATIVE: u64 = u64::MAX;

    /// Derives the protocol-agnostic key for a
    /// `(scenario, workload, seed, duration)` cell.
    /// `duration` of `None` resolves to the spec's default horizon so that
    /// `None` and an explicit default-length override share one entry. A
    /// trace-replay spec always keys as `ScenarioKey::NATIVE`: the only
    /// override its build accepts is one equal to the recording's horizon,
    /// so `None` and that explicit value are the same scenario.
    pub fn new(
        scenario: &ScenarioSpec,
        workload: &WorkloadSpec,
        seed: u64,
        duration: Option<f64>,
    ) -> Self {
        let duration_bits = match scenario.default_duration() {
            None => Self::NATIVE,
            Some(default) => duration.unwrap_or(default).to_bits(),
        };
        ScenarioKey {
            scenario: scenario.cache_key(),
            workload: workload.cache_key(),
            protocol: String::new(),
            seed,
            duration_bits,
        }
    }

    /// Extends the key with a protocol encoding
    /// ([`ProtocolSpec::cache_key`](crate::ProtocolSpec::cache_key) plus any
    /// run-level qualifiers), turning a scenario identity into a full cell
    /// identity.
    pub fn with_protocol(mut self, encoding: impl Into<String>) -> Self {
        self.protocol = encoding.into();
        self
    }

    /// The key's canonical string form — injective over everything the key
    /// holds (the component encodings are canonical and none of them can
    /// produce the `|seed=` / `|dur=` separator pattern, so joining them is
    /// lossless). This is the cell identity the report layer records.
    pub fn encoded(&self) -> String {
        format!(
            "{}|seed={}|{}",
            self.group_encoded_prefix(),
            self.seed,
            self.encoded_suffix()
        )
    }

    /// [`ScenarioKey::encoded`] with the seed elided: the identity of a
    /// *cell family* that multi-seed statistics aggregate over. Two records
    /// belong to the same summary cell iff their group encodings match.
    pub fn group_encoded(&self) -> String {
        format!("{}|{}", self.group_encoded_prefix(), self.encoded_suffix())
    }

    fn group_encoded_prefix(&self) -> String {
        format!(
            "scenario={}|workload={}|protocol={}",
            self.scenario, self.workload, self.protocol
        )
    }

    fn encoded_suffix(&self) -> String {
        format!("dur={:016x}", self.duration_bits)
    }
}

/// One fully built experiment input: the contact trace, community ground
/// truth and message workload for a `(spec, workload, seed)` cell.
#[derive(Clone)]
pub struct BuiltScenario {
    /// The mobility/contact scenario.
    pub scenario: Arc<Scenario>,
    /// The message workload for this seed.
    pub workload: Arc<Vec<MessageSpec>>,
    /// Node count (resolved — for trace replay, the recording's).
    pub n_nodes: u32,
    /// Seed used for mobility and traffic.
    pub seed: u64,
    /// Cache identity this scenario was built under.
    pub key: ScenarioKey,
}

impl BuiltScenario {
    /// Builds the full `(scenario, workload, seed)` cell without a cache.
    /// Trace-replay specs get their communities from online detection (a raw
    /// trace carries no ground truth).
    pub fn from_specs(
        spec: &ScenarioSpec,
        workload: &WorkloadSpec,
        seed: u64,
        duration: Option<f64>,
    ) -> Result<Self, String> {
        let key = ScenarioKey::new(spec, workload, seed, duration);
        let mut scenario = spec.build(seed, duration)?;
        if matches!(spec, ScenarioSpec::TraceReplay { .. }) {
            detect_ground_truth(&mut scenario);
        }
        let n_nodes = scenario.trace.n_nodes;
        let messages = workload.generate(n_nodes, scenario.trace.duration, seed);
        Ok(BuiltScenario {
            scenario: Arc::new(scenario),
            workload: Arc::new(messages),
            n_nodes,
            seed,
            key,
        })
    }

    /// Builds the §V-A paper scenario for `n_nodes` nodes and `seed`.
    pub fn build(n_nodes: u32, seed: u64) -> Self {
        Self::from_specs(
            &ScenarioSpec::paper(n_nodes),
            &WorkloadSpec::PaperUniform,
            seed,
            None,
        )
        .expect("paper scenario build cannot fail")
    }

    /// A reduced paper variant (shorter horizon) used by Criterion benches
    /// so a bench iteration stays sub-second.
    pub fn build_scaled(n_nodes: u32, seed: u64, duration: f64) -> Self {
        Self::from_specs(
            &ScenarioSpec::paper(n_nodes),
            &WorkloadSpec::PaperUniform,
            seed,
            Some(duration),
        )
        .expect("paper scenario build cannot fail")
    }

    /// Wraps a replayed (e.g. real-world) contact trace as a runnable
    /// scenario: the paper's traffic model is fitted to the trace's node
    /// count and horizon, and communities are detected online.
    pub fn from_trace(trace: ContactTrace, seed: u64) -> Self {
        Self::from_specs(
            &ScenarioSpec::trace(Arc::new(trace)),
            &WorkloadSpec::PaperUniform,
            seed,
            None,
        )
        .expect("an already-parsed trace cannot fail to build")
    }
}

/// Replaces a replayed trace's placeholder communities with the output of
/// online detection — the closest thing to ground truth a raw recording has.
fn detect_ground_truth(scenario: &mut Scenario) {
    let dets = ce_core::detect_over_trace(&scenario.trace, ce_core::DetectorConfig::default());
    let map = ce_core::detected_map(&dets);
    let communities: Vec<u32> = (0..scenario.trace.n_nodes)
        .map(|i| map.cid(dtn_sim::NodeId(i)))
        .collect();
    scenario.n_communities = communities.iter().copied().max().map_or(0, |c| c + 1);
    scenario.communities = communities;
}

/// Thread-safe memo of built scenarios, so every protocol and λ value runs
/// against the *identical* contact process and workload for a given
/// [`ScenarioKey`]. Bounded: the cache holds at most
/// [`capacity`](ScenarioCache::capacity) scenarios
/// ([`DEFAULT_SCENARIO_CACHE_CAP`] by default; tune with
/// [`ScenarioCache::with_capacity`]) and evicts the least recently used
/// entry — along with its memoised community detection — when full, so a
/// matrix over arbitrarily many distinct scenario specs runs in bounded
/// memory. Eviction only drops the memo, never correctness: a re-requested
/// scenario is rebuilt bit-identically from its spec.
pub struct ScenarioCache {
    /// Built scenarios plus the logical time of their last use.
    map: Mutex<HashMap<ScenarioKey, (BuiltScenario, u64)>>,
    /// Memoised online community detection per scenario (detection replays
    /// the whole trace — worth doing once, not once per consumer).
    detected: Mutex<HashMap<ScenarioKey, Arc<ce_core::CommunityMap>>>,
    /// Monotone logical clock stamping every hit/insert for LRU ordering.
    tick: AtomicU64,
    /// Maximum number of scenarios held at once (≥ 1).
    cap: usize,
}

impl Default for ScenarioCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SCENARIO_CACHE_CAP)
    }
}

impl ScenarioCache {
    /// Creates an empty cache with the default capacity
    /// ([`DEFAULT_SCENARIO_CACHE_CAP`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `cap` scenarios (clamped to
    /// at least 1 — a cache that can hold nothing would rebuild the current
    /// scenario on every consumer).
    pub fn with_capacity(cap: usize) -> Self {
        ScenarioCache {
            map: Mutex::new(HashMap::new()),
            detected: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    /// The maximum number of scenarios this cache holds at once.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Returns the scenario for the full `(spec, workload, seed, duration)`
    /// quadruple, building it on first use.
    ///
    /// # Panics
    /// Panics if the spec cannot be built (unreadable trace file, horizon
    /// conflict) — sweep cells are validated configuration, not user input.
    pub fn get_spec(
        &self,
        spec: &ScenarioSpec,
        workload: &WorkloadSpec,
        seed: u64,
        duration: Option<f64>,
    ) -> BuiltScenario {
        self.try_get_spec(spec, workload, seed, duration)
            .unwrap_or_else(|e| panic!("cannot build scenario {spec}: {e}"))
    }

    /// [`ScenarioCache::get_spec`], propagating build failures (the path for
    /// CLI-supplied trace files).
    pub fn try_get_spec(
        &self,
        spec: &ScenarioSpec,
        workload: &WorkloadSpec,
        seed: u64,
        duration: Option<f64>,
    ) -> Result<BuiltScenario, String> {
        let key = ScenarioKey::new(spec, workload, seed, duration);
        if let Some(s) = {
            let mut map = self.map.lock().unwrap();
            map.get_mut(&key).map(|slot| {
                slot.1 = self.tick.fetch_add(1, Ordering::Relaxed);
                slot.0.clone()
            })
        } {
            // Trace replay keys as NATIVE whatever the override, so a hit
            // must still enforce what the build would have rejected.
            if let Some(d) = duration {
                if (d - s.scenario.trace.duration).abs() > 1e-9 {
                    return Err(format!(
                        "duration override {d} conflicts with the trace's recorded horizon {}",
                        s.scenario.trace.duration
                    ));
                }
            }
            return Ok(s);
        }
        let built = BuiltScenario::from_specs(spec, workload, seed, duration)?;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().unwrap();
        // A racing builder may have inserted first; keep whichever scenario
        // is already cached so every consumer shares one Arc.
        let out = {
            let slot = map.entry(key.clone()).or_insert((built, tick));
            slot.1 = tick;
            slot.0.clone()
        };
        if map.len() > self.cap {
            // Evict the least recently used entry (never the one just
            // touched) together with its community-detection memo.
            let victim = map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, v)| v.1)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                map.remove(&victim);
                drop(map);
                self.detected.lock().unwrap().remove(&victim);
            }
        }
        Ok(out)
    }

    /// Returns the paper-horizon bus-city scenario for `(n_nodes, seed)`,
    /// building it on first use.
    pub fn get(&self, n_nodes: u32, seed: u64) -> BuiltScenario {
        self.get_with_duration(n_nodes, seed, None)
    }

    /// The paper bus-city for `(n_nodes, seed)` with an optional horizon
    /// override (`None` = the paper's duration), building it on first use.
    pub fn get_with_duration(
        &self,
        n_nodes: u32,
        seed: u64,
        duration: Option<f64>,
    ) -> BuiltScenario {
        self.get_spec(
            &ScenarioSpec::paper(n_nodes),
            &WorkloadSpec::PaperUniform,
            seed,
            duration,
        )
    }

    /// The online-detected community map for `bs`, memoised per scenario so
    /// every consumer — sweep runs, agreement metrics — shares one detection
    /// pass per trace. Memoisation requires `bs` to be *this cache's* entry
    /// (checked by pointer identity, so a foreign scenario — e.g. built
    /// directly via [`BuiltScenario::from_trace`] — can never collide with a
    /// cached one); foreign scenarios are detected fresh.
    pub fn detected_communities(&self, bs: &BuiltScenario) -> Arc<ce_core::CommunityMap> {
        let ours = self
            .map
            .lock()
            .unwrap()
            .get(&bs.key)
            .is_some_and(|cached| Arc::ptr_eq(&cached.0.scenario, &bs.scenario));
        if ours {
            if let Some(m) = self.detected.lock().unwrap().get(&bs.key) {
                return Arc::clone(m);
            }
        }
        let dets =
            ce_core::detect_over_trace(&bs.scenario.trace, ce_core::DetectorConfig::default());
        let map = Arc::new(ce_core::detected_map(&dets));
        if ours {
            self.detected
                .lock()
                .unwrap()
                .insert(bs.key.clone(), Arc::clone(&map));
        }
        map
    }

    /// Number of cached scenarios.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_mobility::scenario::ScenarioConfig;
    use dtn_sim::Contact;

    fn tiny_trace() -> ContactTrace {
        ContactTrace::new(
            6,
            300.0,
            vec![
                Contact::new(0, 1, 10.0, 40.0),
                Contact::new(2, 3, 15.0, 50.0),
                Contact::new(4, 5, 20.0, 60.0),
                Contact::new(0, 1, 100.0, 130.0),
            ],
        )
    }

    #[test]
    fn cache_reuses_scenarios() {
        let cache = ScenarioCache::new();
        assert!(cache.is_empty());
        let a = cache.get(8, 1);
        let b = cache.get(8, 1);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a.scenario, &b.scenario));
        let c = cache.get(8, 2);
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&a.scenario, &c.scenario));
    }

    #[test]
    fn cache_evicts_least_recently_used_beyond_capacity() {
        let cache = ScenarioCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache.get(8, 1);
        let _b = cache.get(8, 2);
        // Re-get seed 1 so seed 2 becomes the LRU victim, and memoise seed
        // 1's detection so we can observe it survives eviction of others.
        let a = cache.get(8, 1);
        let det_a = cache.detected_communities(&a);
        let c = cache.get(8, 3);
        assert_eq!(cache.len(), 2, "capacity bounds the cache");
        // Seed 1 (recently used) and seed 3 (just inserted) survive; seed 2
        // was evicted, so re-requesting it rebuilds rather than errors.
        let a2 = cache.get(8, 1);
        assert!(Arc::ptr_eq(&a.scenario, &a2.scenario));
        assert!(Arc::ptr_eq(&det_a, &cache.detected_communities(&a2)));
        let b2 = cache.get(8, 2);
        assert_eq!(b2.scenario.trace.duration, c.scenario.trace.duration);
        assert_eq!(cache.len(), 2);
        // The clamp: a zero capacity still caches the current scenario.
        let one = ScenarioCache::with_capacity(0);
        assert_eq!(one.capacity(), 1);
        one.get(8, 1);
        one.get(8, 2);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn cache_keys_include_duration() {
        let cache = ScenarioCache::new();
        let paper = cache.get(8, 1);
        let short = cache.get_with_duration(8, 1, Some(400.0));
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&paper.scenario, &short.scenario));
        assert_eq!(short.scenario.trace.duration, 400.0);
    }

    /// `None` and an explicit paper-length duration are the same entry: the
    /// key is the resolved duration, not a sentinel.
    #[test]
    fn default_and_explicit_paper_duration_share_entry() {
        let cache = ScenarioCache::new();
        let paper_d = ScenarioConfig::paper(8).duration;
        let a = cache.get(8, 1);
        let b = cache.get_with_duration(8, 1, Some(paper_d));
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a.scenario, &b.scenario));
    }

    /// The regression the old `(n_nodes, seed, duration)` key allowed:
    /// distinct scenario families (and workloads) with identical node count,
    /// seed and horizon must occupy distinct cache entries.
    #[test]
    fn distinct_specs_get_distinct_entries() {
        let cache = ScenarioCache::new();
        let d = Some(300.0);
        let paper = cache.get_spec(&ScenarioSpec::paper(6), &WorkloadSpec::PaperUniform, 1, d);
        let rwp = cache.get_spec(&ScenarioSpec::rwp(6), &WorkloadSpec::PaperUniform, 1, d);
        let trace = cache.get_spec(
            &ScenarioSpec::trace(Arc::new(tiny_trace())),
            &WorkloadSpec::PaperUniform,
            1,
            None,
        );
        let hotspot = cache.get_spec(&ScenarioSpec::paper(6), &WorkloadSpec::hotspot(), 1, d);
        assert_eq!(cache.len(), 4, "four distinct cells, four entries");
        assert!(!Arc::ptr_eq(&paper.scenario, &rwp.scenario));
        assert!(!Arc::ptr_eq(&paper.scenario, &trace.scenario));
        // Same mobility, different workload: the trace may be rebuilt, but
        // the workloads must differ.
        assert_ne!(paper.workload, hotspot.workload);
    }

    /// A foreign scenario (not built by this cache) never reads or poisons
    /// the memoised detection of a cached scenario with a matching key.
    #[test]
    fn detected_memo_ignores_foreign_scenarios() {
        let cache = ScenarioCache::new();
        let short = cache.get_with_duration(6, 7, Some(300.0));
        let cached_map = cache.detected_communities(&short);

        let mut foreign = BuiltScenario::from_trace(tiny_trace(), 7);
        // Forge the cached entry's key: identity is still checked by pointer.
        foreign.key = short.key.clone();
        let foreign_map = cache.detected_communities(&foreign);
        assert!(
            !Arc::ptr_eq(&cached_map, &foreign_map),
            "foreign scenario must get its own detection, not the memo"
        );
        // And the memo still serves the cached scenario afterwards.
        assert!(Arc::ptr_eq(
            &cached_map,
            &cache.detected_communities(&short)
        ));
    }

    #[test]
    fn scaled_scenario_is_shorter() {
        let s = BuiltScenario::build_scaled(8, 1, 500.0);
        assert_eq!(s.scenario.trace.duration, 500.0);
        assert!(s.workload.iter().all(|m| m.create_at.as_secs() < 500.0));
    }

    #[test]
    fn from_trace_round_trips_node_count() {
        let ps = BuiltScenario::from_trace(tiny_trace(), 7);
        assert_eq!(ps.n_nodes, 6);
        assert_eq!(ps.scenario.communities.len(), 6);
        assert!(ps.workload.iter().all(|m| m.create_at.as_secs() < 300.0));
    }

    /// For trace replay, `None` and an explicit native-length override are
    /// the same scenario — one entry, one detection pass — while a
    /// conflicting override still errors even on a cache hit.
    #[test]
    fn trace_native_and_explicit_duration_share_entry() {
        let cache = ScenarioCache::new();
        let spec = ScenarioSpec::trace(Arc::new(tiny_trace()));
        let a = cache.get_spec(&spec, &WorkloadSpec::PaperUniform, 1, None);
        let b = cache.get_spec(&spec, &WorkloadSpec::PaperUniform, 1, Some(300.0));
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a.scenario, &b.scenario));
        assert!(cache
            .try_get_spec(&spec, &WorkloadSpec::PaperUniform, 1, Some(500.0))
            .is_err());
    }

    #[test]
    fn bad_trace_path_propagates_error() {
        let cache = ScenarioCache::new();
        let r = cache.try_get_spec(
            &ScenarioSpec::trace_path("/nonexistent/never.trace"),
            &WorkloadSpec::PaperUniform,
            1,
            None,
        );
        assert!(r.is_err());
        assert!(cache.is_empty(), "failed builds must not be cached");
    }
}
