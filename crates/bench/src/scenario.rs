//! Paper-scenario construction and memoisation.

use dtn_mobility::scenario::{Scenario, ScenarioConfig};
use dtn_mobility::RoadGraphBuilder;
use dtn_sim::{ContactTrace, MessageSpec, TrafficConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One fully built `(n_nodes, seed)` experiment input: the contact trace,
/// community ground truth and message workload.
#[derive(Clone)]
pub struct PaperScenario {
    /// The mobility/contact scenario.
    pub scenario: Arc<Scenario>,
    /// The message workload for this seed.
    pub workload: Arc<Vec<MessageSpec>>,
    /// Node count.
    pub n_nodes: u32,
    /// Seed used for mobility and traffic.
    pub seed: u64,
}

impl PaperScenario {
    /// Builds the §V-A scenario for `n_nodes` nodes and `seed`.
    pub fn build(n_nodes: u32, seed: u64) -> Self {
        let cfg = ScenarioConfig::paper(n_nodes);
        let scenario = cfg.build(seed);
        let workload = TrafficConfig::paper(cfg.duration).generate(n_nodes, seed);
        PaperScenario {
            scenario: Arc::new(scenario),
            workload: Arc::new(workload),
            n_nodes,
            seed,
        }
    }

    /// A reduced variant (shorter horizon) used by Criterion benches so a
    /// bench iteration stays sub-second.
    pub fn build_scaled(n_nodes: u32, seed: u64, duration: f64) -> Self {
        let cfg = ScenarioConfig {
            duration,
            ..ScenarioConfig::paper(n_nodes)
        };
        let scenario = cfg.build(seed);
        let workload = TrafficConfig::paper(duration).generate(n_nodes, seed);
        PaperScenario {
            scenario: Arc::new(scenario),
            workload: Arc::new(workload),
            n_nodes,
            seed,
        }
    }

    /// Wraps a replayed (e.g. real-world) contact trace as a runnable
    /// scenario: the paper's traffic model is fitted to the trace's node
    /// count and horizon, and communities are detected online — a raw trace
    /// carries no ground truth.
    pub fn from_trace(trace: ContactTrace, seed: u64) -> Self {
        let n_nodes = trace.n_nodes;
        let workload = TrafficConfig::paper(trace.duration).generate(n_nodes, seed);
        let dets = ce_core::detect_over_trace(&trace, ce_core::DetectorConfig::default());
        let map = ce_core::detected_map(&dets);
        let communities: Vec<u32> = (0..n_nodes).map(|i| map.cid(dtn_sim::NodeId(i))).collect();
        let n_communities = communities.iter().copied().max().map_or(0, |c| c + 1);
        let scenario = Scenario {
            trace,
            communities,
            n_communities,
            graph: RoadGraphBuilder::new().build(),
            trajectories: Vec::new(),
        };
        PaperScenario {
            scenario: Arc::new(scenario),
            workload: Arc::new(workload),
            n_nodes,
            seed,
        }
    }
}

/// Thread-safe memo of built scenarios, so every protocol and λ value runs
/// against the *identical* contact process for a given `(n, seed, duration)`.
#[derive(Default)]
pub struct ScenarioCache {
    map: Mutex<HashMap<(u32, u64, u64), PaperScenario>>,
    /// Memoised online community detection per scenario (detection replays
    /// the whole trace — worth doing once, not once per consumer).
    detected: Mutex<HashMap<(u32, u64, u64), Arc<ce_core::CommunityMap>>>,
}

impl ScenarioCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the paper-horizon scenario for `(n_nodes, seed)`, building it
    /// on first use.
    pub fn get(&self, n_nodes: u32, seed: u64) -> PaperScenario {
        self.get_with_duration(n_nodes, seed, None)
    }

    /// Returns the scenario for `(n_nodes, seed)` with an optional horizon
    /// override (`None` = the paper's duration), building it on first use.
    /// Keys use the *resolved* duration, so `None` and an explicit
    /// paper-length override share one entry.
    pub fn get_with_duration(
        &self,
        n_nodes: u32,
        seed: u64,
        duration: Option<f64>,
    ) -> PaperScenario {
        let duration = duration.unwrap_or_else(|| ScenarioConfig::paper(n_nodes).duration);
        let key = (n_nodes, seed, duration.to_bits());
        if let Some(s) = self.map.lock().unwrap().get(&key) {
            return s.clone();
        }
        let built = PaperScenario::build_scaled(n_nodes, seed, duration);
        self.map.lock().unwrap().entry(key).or_insert(built).clone()
    }

    /// The online-detected community map for `ps`, memoised per scenario so
    /// every consumer — sweep runs, agreement metrics — shares one detection
    /// pass per trace. Memoisation requires `ps` to be *this cache's* entry
    /// (checked by pointer identity, so a foreign scenario — e.g. built by
    /// [`PaperScenario::from_trace`] — can never collide with a cached one);
    /// foreign scenarios are detected fresh.
    pub fn detected_communities(&self, ps: &PaperScenario) -> Arc<ce_core::CommunityMap> {
        let key = (ps.n_nodes, ps.seed, ps.scenario.trace.duration.to_bits());
        let ours = self
            .map
            .lock()
            .unwrap()
            .get(&key)
            .is_some_and(|cached| Arc::ptr_eq(&cached.scenario, &ps.scenario));
        if ours {
            if let Some(m) = self.detected.lock().unwrap().get(&key) {
                return Arc::clone(m);
            }
        }
        let dets =
            ce_core::detect_over_trace(&ps.scenario.trace, ce_core::DetectorConfig::default());
        let map = Arc::new(ce_core::detected_map(&dets));
        if ours {
            self.detected.lock().unwrap().insert(key, Arc::clone(&map));
        }
        map
    }

    /// Number of cached scenarios.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_reuses_scenarios() {
        let cache = ScenarioCache::new();
        assert!(cache.is_empty());
        let a = cache.get(8, 1);
        let b = cache.get(8, 1);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a.scenario, &b.scenario));
        let c = cache.get(8, 2);
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&a.scenario, &c.scenario));
    }

    #[test]
    fn cache_keys_include_duration() {
        let cache = ScenarioCache::new();
        let paper = cache.get(8, 1);
        let short = cache.get_with_duration(8, 1, Some(400.0));
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&paper.scenario, &short.scenario));
        assert_eq!(short.scenario.trace.duration, 400.0);
    }

    /// `None` and an explicit paper-length duration are the same entry: the
    /// key is the resolved duration, not a sentinel.
    #[test]
    fn default_and_explicit_paper_duration_share_entry() {
        let cache = ScenarioCache::new();
        let paper_d = ScenarioConfig::paper(8).duration;
        let a = cache.get(8, 1);
        let b = cache.get_with_duration(8, 1, Some(paper_d));
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a.scenario, &b.scenario));
    }

    /// A foreign scenario (not built by this cache) never reads or poisons
    /// the memoised detection of a cached scenario with matching key fields.
    #[test]
    fn detected_memo_ignores_foreign_scenarios() {
        use dtn_sim::Contact;
        let cache = ScenarioCache::new();
        let short = cache.get_with_duration(6, 7, Some(300.0));
        let cached_map = cache.detected_communities(&short);

        // Same (n, seed, duration) key fields, completely different trace.
        let trace = ContactTrace::new(
            6,
            300.0,
            vec![
                Contact::new(0, 1, 10.0, 290.0),
                Contact::new(2, 3, 10.0, 290.0),
                Contact::new(4, 5, 10.0, 290.0),
            ],
        );
        let foreign = PaperScenario::from_trace(trace, 7);
        let foreign_map = cache.detected_communities(&foreign);
        assert!(
            !Arc::ptr_eq(&cached_map, &foreign_map),
            "foreign scenario must get its own detection, not the memo"
        );
        // And the memo still serves the cached scenario afterwards.
        assert!(Arc::ptr_eq(
            &cached_map,
            &cache.detected_communities(&short)
        ));
    }

    #[test]
    fn scaled_scenario_is_shorter() {
        let s = PaperScenario::build_scaled(8, 1, 500.0);
        assert_eq!(s.scenario.trace.duration, 500.0);
        assert!(s.workload.iter().all(|m| m.create_at.as_secs() < 500.0));
    }

    #[test]
    fn from_trace_round_trips_node_count() {
        use dtn_sim::Contact;
        let trace = ContactTrace::new(
            6,
            300.0,
            vec![
                Contact::new(0, 1, 10.0, 40.0),
                Contact::new(2, 3, 15.0, 50.0),
                Contact::new(4, 5, 20.0, 60.0),
                Contact::new(0, 1, 100.0, 130.0),
            ],
        );
        let ps = PaperScenario::from_trace(trace, 7);
        assert_eq!(ps.n_nodes, 6);
        assert_eq!(ps.scenario.communities.len(), 6);
        assert!(ps.workload.iter().all(|m| m.create_at.as_secs() < 300.0));
    }
}
