//! # dtn-bench — the experiment harness
//!
//! Regenerates every figure of the ICPP'11 contact-expectation paper plus
//! the ablations listed in DESIGN.md, and sweeps arbitrary scenario
//! families beyond the paper's bus-city. The harness
//!
//! * builds (and memoises) one scenario per
//!   `(ScenarioSpec, WorkloadSpec, seed, duration)` cell,
//! * fans simulation runs out over the work-stealing sweep [`fabric`],
//!   reducing results in deterministic `(point, seed)` order,
//! * prints the same series the paper plots and writes CSV files under
//!   `results/`.
//!
//! Binaries: `fig2`, `fig3`, `fig4`, `ablation` (see `--help` of each),
//! `smoke` (one-shot sanity run), `dtnrun` (single-run report / trace
//! replay), `shootout` (all protocols across scenario families in one
//! matrix), `reportcheck` (schema validator for emitted JSON and TRACE/1.0
//! event-log artifacts), `dtndiff` (drift classifier between two artifacts
//! or two reports — the CI regression gate). All of them
//! execute simulations through the [`runner`] layer's
//! `RunSpec → SimStats` primitive ([`runner::run_spec`] / [`runner::run_on`]),
//! every scenario/workload is a first-class
//! [`dtn_mobility::ScenarioSpec`]/[`dtn_mobility::WorkloadSpec`] value, and
//! every protocol — family *and* tuning parameters — is a first-class
//! [`ProtocolSpec`] value with a CLI grammar
//! (`--protocol eer:lambda=8,ttl=3600`; see [`protocols`]).
//!
//! Results are first-class too: every run is captured as a
//! [`report::RunRecord`] (full spec provenance + stats + wall-clock), every
//! binary's output flows through [`report::ReportSpec`] — multi-seed
//! statistics per cell, JSON/CSV/Markdown emitters behind repeatable
//! `--out FORMAT:PATH` flags — and `shootout` writes a
//! `BENCH_shootout.json` trajectory so performance is tracked across
//! revisions (see [`report`]).
//!
//! Observation is first-class as well: a [`ProbeSpec`] (CLI grammar
//! `--probe timeseries:dt=60`, `--probe latency`; see [`probes`]) attaches
//! [`dtn_sim::observe`] probes to every run, so delivery-over-time curves
//! and exact latency percentiles come out of the *same single run* that
//! produces the end-of-run counters — probes never change a run's
//! [`dtn_sim::SimStats`], bit for bit.
//!
//! Runs are durable, too: `--probe eventlog[:path=P]` streams every engine
//! event into a hash-chained TRACE/1.0 artifact
//! ([`dtn_sim::EventLogWriter`]), and [`replay_artifact`] re-folds any
//! probe set over the recorded stream into a normal [`report::RunRecord`]
//! — stats and probe outputs bitwise identical to the live run — without
//! touching the engine (see [`dtn_sim::TraceReader`]).
//!
//! And runs are *memoised* across processes and revisions: the persistent
//! content-addressed result [`store`] files every computed
//! [`report::RunRecord`] under its injective cell key, so a warm re-run of
//! any matrix costs file reads instead of simulation (`--store DIR` /
//! `--no-store` on every binary; maintenance via the `dtnstore` binary).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fabric;
pub mod probes;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod store;

pub use dtn_mobility::{ScenarioSpec, TraceSource, WorkloadSpec};
pub use fabric::run_indexed;
pub use probes::ProbeSpec;
pub use protocols::{ProtocolKind, ProtocolParams, ProtocolSpec};
pub use report::{
    print_series_table, write_csv, CellSummary, MetricSummary, OutputSpec, ReportSpec, RunRecord,
    Series,
};
pub use runner::{
    replay_artifact, run_matrix, run_matrix_records, run_matrix_records_stored, run_matrix_with,
    run_on, run_on_observed, run_spec, run_spec_observed, run_stream, CommunitySource, RunOutput,
    RunSpec, StreamRun, SweepConfig,
};
pub use scenario::{BuiltScenario, ScenarioCache, ScenarioKey, DEFAULT_SCENARIO_CACHE_CAP};
pub use store::{resolve_store, CellStore, GcOutcome, StoreStats, DEFAULT_STORE_ROOT};
