//! Scaled-down figure regeneration as Criterion benches, so
//! `cargo bench --workspace` exercises the full experiment pipeline for
//! every figure of the paper (fig. 2: protocol comparison; figs. 3–4:
//! λ sweeps). The full-scale series are produced by the `fig2`/`fig3`/`fig4`
//! binaries; these benches use a 1 500 s horizon at N = 40 to stay fast.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_bench::{BuiltScenario, ProtocolKind, ProtocolSpec};
use dtn_sim::{SimConfig, Simulation};
use std::hint::black_box;
use std::sync::Arc;

fn scaled() -> BuiltScenario {
    BuiltScenario::build_scaled(40, 1, 1500.0)
}

fn run(
    ps: &BuiltScenario,
    proto: &ProtocolSpec,
    communities: Option<&Arc<ce_core::CommunityMap>>,
) -> u64 {
    let stats = Simulation::new(
        &ps.scenario.trace,
        ps.workload.as_ref().clone(),
        SimConfig::paper(ps.seed),
        |id, n| proto.make_router(id, n, communities),
    )
    .run();
    stats.delivered
}

/// Figure 2 (scaled): one bench per compared protocol.
fn fig2_comparison(c: &mut Criterion) {
    let ps = scaled();
    let communities = Arc::new(ce_core::CommunityMap::new(ps.scenario.communities.clone()));
    let mut g = c.benchmark_group("fig2_comparison_scaled");
    for kind in ProtocolKind::FIG2 {
        let proto = ProtocolSpec::paper(kind);
        g.bench_function(kind.name(), |b| {
            b.iter(|| black_box(run(&ps, &proto, Some(&communities))))
        });
    }
    g.finish();
}

/// Figure 3 (scaled): EER λ sweep.
fn fig3_eer_lambda(c: &mut Criterion) {
    let ps = scaled();
    let mut g = c.benchmark_group("fig3_eer_lambda_scaled");
    for lambda in [6u32, 8, 10, 12] {
        let proto = ProtocolSpec::paper(ProtocolKind::Eer).with_lambda(lambda);
        g.bench_function(format!("lambda_{lambda}"), |b| {
            b.iter(|| black_box(run(&ps, &proto, None)))
        });
    }
    g.finish();
}

/// Figure 4 (scaled): CR λ sweep.
fn fig4_cr_lambda(c: &mut Criterion) {
    let ps = scaled();
    let communities = Arc::new(ce_core::CommunityMap::new(ps.scenario.communities.clone()));
    let mut g = c.benchmark_group("fig4_cr_lambda_scaled");
    for lambda in [6u32, 8, 10, 12] {
        let proto = ProtocolSpec::paper(ProtocolKind::Cr).with_lambda(lambda);
        g.bench_function(format!("lambda_{lambda}"), |b| {
            b.iter(|| black_box(run(&ps, &proto, Some(&communities))))
        });
    }
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig2_comparison, fig3_eer_lambda, fig4_cr_lambda
}
criterion_main!(figures);
