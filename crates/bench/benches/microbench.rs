//! Criterion microbenchmarks of the hot per-contact primitives:
//! the Theorem 1/2 estimators, MI gossip merge, MEMD Dijkstra, contact
//! detection (bulk and large-n incremental stepping), event-queue
//! throughput (calendar vs. the heap reference) and raw engine throughput.

use ce_core::{CommunityMap, ContactHistory, MemdSolver, MiMatrix};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dtn_mobility::scenario::ScenarioConfig;
use dtn_mobility::{ContactStepper, ScenarioSpec};
use dtn_sim::event::{EventKind, EventQueue, HeapEventQueue};
use dtn_sim::observe::{EventLog, LatencyHistogramProbe, TimeSeriesProbe};
use dtn_sim::{DrainMode, NodeId, NodePair, SimConfig, SimTime, Simulation, TrafficConfig};
use std::hint::black_box;

const N: u32 = 240;

/// A history where node 0 met every peer on a quasi-periodic schedule.
fn warm_history() -> ContactHistory {
    let mut h = ContactHistory::new(NodeId(0), N, 32);
    for peer in 1..N {
        let base = 50.0 + f64::from(peer % 17) * 13.0;
        let mut t = f64::from(peer % 7);
        for k in 0..20 {
            t += base + f64::from((k * peer) % 11);
            h.record_meeting(NodeId(peer), SimTime::secs(t));
        }
    }
    h
}

fn warm_mi(h: &ContactHistory) -> MiMatrix {
    let mut mi = MiMatrix::new(N);
    for i in 0..N {
        // Synthesise plausible rows; row 0 from the real history.
        let mut row = vec![f64::INFINITY; N as usize];
        row[i as usize] = 0.0;
        for j in 0..N {
            if i != j {
                row[j as usize] = 100.0 + f64::from((i * 31 + j * 17) % 400);
            }
        }
        mi.set_row(NodeId(i), &row, 1.0);
    }
    let mut row0 = vec![f64::INFINITY; N as usize];
    row0[0] = 0.0;
    for j in 1..N {
        if let Some(m) = h.pair(NodeId(j)).mean_interval() {
            row0[j as usize] = m;
        }
    }
    mi.set_row(NodeId(0), &row0, 2.0);
    mi
}

fn bench_estimators(c: &mut Criterion) {
    let h = warm_history();
    let now = SimTime::secs(6000.0);
    c.bench_function("eev_theorem1_n240", |b| {
        b.iter(|| black_box(h.eev(black_box(now), black_box(336.0))))
    });
    c.bench_function("emd_theorem2_single_pair", |b| {
        b.iter(|| black_box(h.pair(NodeId(7)).expected_meeting_delay(black_box(now))))
    });
    let map = CommunityMap::new((0..N).map(|i| i % 4).collect());
    c.bench_function("enec_theorem4_n240_c4", |b| {
        b.iter(|| black_box(map.enec(&h, black_box(now), black_box(336.0))))
    });
}

fn bench_mi_merge(c: &mut Criterion) {
    let h = warm_history();
    let a = warm_mi(&h);
    let mut b_mi = MiMatrix::new(N);
    // Make half of b's rows fresher so the merge does real work.
    for i in (0..N).step_by(2) {
        let row = a.row(NodeId(i)).to_vec();
        b_mi.set_row(NodeId(i), &row, 10.0);
    }
    c.bench_function("mi_merge_n240_half_fresher", |b| {
        b.iter_batched(
            || a.clone(),
            |mut mine| black_box(mine.merge_from(&b_mi)),
            BatchSize::LargeInput,
        )
    });
}

fn bench_memd(c: &mut Criterion) {
    let h = warm_history();
    let mi = warm_mi(&h);
    let mut solver = MemdSolver::new();
    let now = SimTime::secs(6000.0);
    c.bench_function("memd_dijkstra_n240", |b| {
        b.iter(|| {
            let d = solver.memd_all(&h, &mi, black_box(now), None);
            black_box(d[17])
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace_gen_n40_1000s", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig {
                duration: 1000.0,
                ..ScenarioConfig::paper(40)
            };
            black_box(cfg.build(1).trace.contacts.len())
        })
    });
}

/// Per-step cost of incremental contact detection at city scale: the flat
/// grid rebuild + neighborhood probe over all nodes, amortized over a batch
/// of steps so open-contact bookkeeping participates realistically.
fn bench_contact_step(c: &mut Criterion) {
    for n in [1_000u32, 10_000] {
        let cfg = ScenarioConfig {
            duration: 60.0,
            ..ScenarioConfig::city(n, ScenarioSpec::districts_for(n))
        };
        let parts = cfg.build_parts(1);
        let steps = 50u32;
        c.bench_function(&format!("contact_step_n{n}_x{steps}"), |b| {
            b.iter(|| {
                let mut stepper = ContactStepper::new(parts.trajectories.len(), 60.0, cfg.contact);
                let mut downs = Vec::new();
                let mut ups = Vec::new();
                let mut emitted = 0usize;
                for _ in 0..steps {
                    downs.clear();
                    ups.clear();
                    stepper.step(&parts.trajectories, &mut downs, &mut ups);
                    emitted += downs.len() + ups.len();
                }
                black_box(emitted)
            })
        });
    }
}

/// The same 50-step detection batch through [`ShardedContactSource`] with a
/// 4-worker pool, for comparison against `contact_step_n10000_x50`: the gap
/// is the coordination overhead (or, on multi-core hosts, the speedup) of
/// the sharded scan.
fn bench_contact_step_sharded(c: &mut Criterion) {
    use dtn_sim::ContactSource;
    let n = 10_000u32;
    let cfg = ScenarioConfig {
        duration: 60.0,
        ..ScenarioConfig::city(n, ScenarioSpec::districts_for(n))
    };
    let parts = cfg.build_parts(1);
    let steps = 50u32;
    // 50 steps at dt = 0.2 → a 10 s window of the 60 s horizon.
    let until = f64::from(steps) * cfg.contact.dt;
    c.bench_function(&format!("contact_step_sharded_n{n}_x{steps}"), |b| {
        b.iter(|| {
            let mut src = dtn_mobility::ShardedContactSource::new(
                parts.trajectories.clone(),
                60.0,
                cfg.contact,
                4,
            );
            let mut out = Vec::new();
            src.next_window(until, &mut out);
            black_box(out.len())
        })
    });
}

/// SoA vs AoS buffer scans: `Buffer::contains` walks a dense id column,
/// the reference walks full array-of-struct entries — the per-contact
/// membership probe the engine does for every summary-vector exchange.
fn bench_buffer_soa(c: &mut Criterion) {
    use dtn_sim::{Buffer, BufferEntry, Message, MessageId};
    let entries: Vec<BufferEntry> = (0..40u32)
        .map(|i| BufferEntry {
            msg: Message {
                id: MessageId(i * 3),
                src: NodeId(i % 7),
                dst: NodeId((i + 1) % 7),
                size: 25 * 1024,
                created: SimTime::secs(f64::from(i)),
                ttl: 1200.0,
            },
            copies: 4,
            received_at: SimTime::secs(f64::from(i)),
            hops: i % 5,
        })
        .collect();
    let mut soa = Buffer::new(64 * 1024 * 1024);
    for e in &entries {
        soa.insert(*e).unwrap();
    }
    let aos = entries;
    let probes: Vec<MessageId> = (0..256u32).map(|k| MessageId(k % 128)).collect();
    c.bench_function("buffer_contains_soa_40x256", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &id in &probes {
                hits += usize::from(soa.contains(id));
            }
            black_box(hits)
        })
    });
    c.bench_function("buffer_contains_aos_40x256", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &id in &probes {
                hits += usize::from(aos.iter().any(|e| e.msg.id == id));
            }
            black_box(hits)
        })
    });
}

/// Push/pop throughput of the calendar [`EventQueue`] against the
/// [`HeapEventQueue`] reference on a contact-shaped schedule: dense bursts
/// of equal-time contact events (dt-step batches) interleaved with sparse
/// non-contact events. This is exactly the distribution that degenerates a
/// width estimator based on sampled gaps.
fn bench_event_queue(c: &mut Criterion) {
    // ~100 events per 0.2 s step plus a sparse second band, pre-generated
    // so both queues replay the identical schedule.
    let schedule: Vec<(SimTime, bool)> = (0..100_000u32)
        .map(|i| {
            let mut x = u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^= x >> 31;
            if x % 50 == 0 {
                (SimTime::secs((x % 20_011) as f64 * 0.01), false)
            } else {
                (SimTime::secs(f64::from(i / 100) * 0.2), true)
            }
        })
        .collect();
    let pair = NodePair::new(NodeId(0), NodeId(1));
    c.bench_function("event_queue_calendar_100k_clustered", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for &(t, contact) in &schedule {
                if contact {
                    q.push_contact(t, EventKind::ContactUp { pair });
                } else {
                    q.push(t, EventKind::TtlSweep);
                }
            }
            let mut n = 0usize;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    c.bench_function("event_queue_heap_100k_clustered", |b| {
        b.iter(|| {
            let mut q = HeapEventQueue::new();
            for &(t, contact) in &schedule {
                if contact {
                    q.push_contact(t, EventKind::ContactUp { pair });
                } else {
                    q.push(t, EventKind::TtlSweep);
                }
            }
            let mut n = 0usize;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        duration: 2000.0,
        ..ScenarioConfig::paper(40)
    };
    let scenario = cfg.build(1);
    let workload = TrafficConfig::paper(2000.0).generate(40, 1);
    // The observer-free engine: events are folded inline into SimStats and
    // discarded — the refactored equivalent of the old inline-mutation path.
    c.bench_function("engine_epidemic_n40_2000s", |b| {
        b.iter(|| {
            let stats = Simulation::new(
                &scenario.trace,
                workload.clone(),
                SimConfig::paper(1),
                |_, _| Box::new(dtn_routing::Epidemic::new()),
            )
            .run();
            black_box(stats.relayed)
        })
    });
    // The same run with the full probe set attached: batched dispatch to a
    // time-series probe, a latency histogram and a raw event log. The gap
    // between this and the bench above is the total observation cost.
    c.bench_function("engine_epidemic_n40_2000s_probed", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                &scenario.trace,
                workload.clone(),
                SimConfig::paper(1),
                |_, _| Box::new(dtn_routing::Epidemic::new()),
            );
            sim.add_observer(Box::new(TimeSeriesProbe::new(60.0)));
            sim.add_observer(Box::new(LatencyHistogramProbe::new()));
            sim.add_observer(Box::new(EventLog::default()));
            let (stats, _obs) = sim.run_observed();
            black_box(stats.relayed)
        })
    });
    // The identical probed run, but with observer dispatch shipped through
    // the bounded SPSC ring to a companion drain thread. The gap between
    // this and `_probed` above is the observation cost left on the hot
    // thread (batch hand-off only) vs. paying full probe dispatch inline.
    c.bench_function("observer_ring_drain", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                &scenario.trace,
                workload.clone(),
                SimConfig::paper(1),
                |_, _| Box::new(dtn_routing::Epidemic::new()),
            );
            sim.add_observer(Box::new(TimeSeriesProbe::new(60.0)));
            sim.add_observer(Box::new(LatencyHistogramProbe::new()));
            sim.add_observer(Box::new(EventLog::default()));
            sim.set_drain_mode(DrainMode::Ring { capacity: 16 });
            let (stats, _obs) = sim.run_observed();
            black_box(stats.relayed)
        })
    });
}

/// The work-stealing sweep fabric against a plain sequential fold over the
/// identical 8-job matrix (4 protocols x 2 seeds on a small scenario): the
/// gap is the fabric's coordination cost — deque setup, the steal sweep and
/// the ordered result merge — since both paths run the very same
/// simulations through the shared [`ScenarioCache`].
fn bench_matrix_fabric(c: &mut Criterion) {
    use dtn_bench::{
        run_matrix_records, ProtocolKind, ProtocolSpec, RunSpec, ScenarioCache,
        ScenarioSpec as BenchScenarioSpec, SweepConfig,
    };
    let specs: Vec<RunSpec> = [
        ProtocolKind::Epidemic,
        ProtocolKind::Eer,
        ProtocolKind::Cr,
        ProtocolKind::SprayAndWait,
    ]
    .into_iter()
    .map(|k| {
        RunSpec::on(
            k.name(),
            BenchScenarioSpec::paper(16),
            ProtocolSpec::paper(k),
        )
        .with_duration(400.0)
    })
    .collect();
    let cache = ScenarioCache::new();
    // Warm the scenario cache so both cells measure run + merge, not builds.
    let warm = SweepConfig {
        seeds: 2,
        threads: 1,
        verbose: false,
    };
    black_box(run_matrix_records(&cache, &specs, warm).len());
    for (label, threads) in [
        ("matrix_fabric_vs_ticket", 4usize),
        ("matrix_sequential_fold", 1),
    ] {
        let cfg = SweepConfig {
            seeds: 2,
            threads,
            verbose: false,
        };
        c.bench_function(label, |b| {
            b.iter(|| {
                let records = run_matrix_records(&cache, &specs, cfg);
                black_box(records.len())
            })
        });
    }
}

/// Result-store primitives. `store_roundtrip` is one publish + admit +
/// serve cycle of a synthetic record — the per-cell overhead a cold sweep
/// pays to populate the store and a warm sweep pays to hit it.
/// `matrix_warm_vs_cold` runs the fabric bench's 8-job matrix against a
/// populated store vs. no store at all: the gap locates the break-even
/// cell cost. Serving pays file read + full reportcheck admission
/// (~70 µs/cell), so on this deliberately tiny matrix (400 s, n = 16)
/// recomputing through the warm `ScenarioCache` can win — the store's
/// ≥10× payoff is on real cells, where a run costs milliseconds to
/// minutes (see the shootout warm-cache CI job).
fn bench_store(c: &mut Criterion) {
    use dtn_bench::{
        run_matrix_records_stored, CellStore, ProtocolKind, ProtocolSpec, RunSpec, ScenarioCache,
        ScenarioSpec as BenchScenarioSpec, SweepConfig,
    };
    let root = std::env::temp_dir().join(format!("dtn_bench_store_micro_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CellStore::open(&root).expect("fresh store");

    let specs: Vec<RunSpec> = [
        ProtocolKind::Epidemic,
        ProtocolKind::Eer,
        ProtocolKind::Cr,
        ProtocolKind::SprayAndWait,
    ]
    .into_iter()
    .map(|k| {
        RunSpec::on(
            k.name(),
            BenchScenarioSpec::paper(16),
            ProtocolSpec::paper(k),
        )
        .with_duration(400.0)
    })
    .collect();
    let cache = ScenarioCache::new();
    let cfg = SweepConfig {
        seeds: 2,
        threads: 1,
        verbose: false,
    };
    // Populate the store (and warm the scenario cache for the cold cell).
    let records = run_matrix_records_stored(&cache, &specs, cfg, Some(&store));
    let record = records[0].clone();
    let key = record.cell.clone();

    c.bench_function("store_roundtrip", |b| {
        b.iter(|| {
            store.publish(&record).expect("publish");
            black_box(store.serve(&key, record.seed).expect("serve"))
        })
    });
    for (label, with_store) in [("matrix_warm", true), ("matrix_cold_nostore", false)] {
        let store = with_store.then_some(&store);
        c.bench_function(&format!("matrix_warm_vs_cold/{label}"), |b| {
            b.iter(|| {
                let records = run_matrix_records_stored(&cache, &specs, cfg, store);
                black_box(records.len())
            })
        });
    }
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_estimators, bench_mi_merge, bench_memd,
              bench_trace_generation, bench_contact_step,
              bench_contact_step_sharded, bench_buffer_soa,
              bench_event_queue, bench_engine, bench_matrix_fabric,
              bench_store
}
criterion_main!(benches);
