//! The streaming contact supply is an *optimization*, not a semantic
//! change: for every generated scenario family, a streamed run
//! ([`dtn_bench::run_stream`]) must reproduce the materialized run
//! ([`dtn_bench::run_spec`] / [`dtn_bench::run_spec_observed`]) bit for
//! bit — statistics, time-series curves and latency histograms alike.
//! This pins the whole chain: windowed contact generation, the engine's
//! source pump, and the calendar queue's contact sequence band.

use dtn_bench::{
    run_spec_observed, run_stream, CommunitySource, ProbeSpec, ProtocolKind, ProtocolSpec, RunSpec,
    ScenarioCache, ScenarioSpec,
};

/// The cells under test: every generated family (paper bus-city, explicit
/// city, RWP) under a flooding and a community-routed protocol.
fn cells() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for (label, scenario) in [
        ("paper", ScenarioSpec::paper(24)),
        ("city", ScenarioSpec::city(60, 5)),
        ("rwp", ScenarioSpec::rwp(30)),
    ] {
        specs.push(
            RunSpec::on(
                format!("epidemic @ {label}"),
                scenario.clone(),
                ProtocolSpec::paper(ProtocolKind::Epidemic),
            )
            .with_duration(900.0)
            .with_probes(vec![
                ProbeSpec::TimeSeries { dt: 120.0 },
                ProbeSpec::LatencyHist,
            ]),
        );
        specs.push(
            RunSpec::on(
                format!("cr @ {label}"),
                scenario,
                ProtocolSpec::paper(ProtocolKind::Cr),
            )
            .with_duration(900.0)
            .with_communities(CommunitySource::GroundTruth),
        );
    }
    specs
}

#[test]
fn streamed_runs_match_materialized_runs_bitwise() {
    let cache = ScenarioCache::new();
    for spec in cells() {
        for seed in [1u64, 7] {
            let (_, materialized) = run_spec_observed(&cache, &spec, seed);
            let streamed = run_stream(&spec, seed).expect("streamable cell");
            assert_eq!(
                materialized.stats.snapshot(),
                streamed.output.stats.snapshot(),
                "{} seed {seed}: streamed stats diverge from materialized",
                spec.series
            );
            // The sharded scan sits on the same equivalence chain: a
            // worker-pool run must match the materialized trace bit for bit
            // too, not merely match the single-threaded stream.
            let sharded =
                run_stream(&spec.clone().with_run_threads(3), seed).expect("shardable cell");
            assert_eq!(
                materialized.stats.snapshot(),
                sharded.output.stats.snapshot(),
                "{} seed {seed}: sharded stats diverge from materialized",
                spec.series
            );
            assert_eq!(
                materialized.stats.delivered_at, sharded.output.stats.delivered_at,
                "{} seed {seed}: sharded delivery time lists diverge",
                spec.series
            );
            assert_eq!(
                materialized.stats.delivered_at, streamed.output.stats.delivered_at,
                "{} seed {seed}: delivery time lists diverge",
                spec.series
            );
            match (&materialized.timeseries, &streamed.output.timeseries) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.samples, b.samples,
                        "{} seed {seed}: time-series curves diverge",
                        spec.series
                    );
                }
                _ => panic!("{} seed {seed}: probe presence diverges", spec.series),
            }
            assert_eq!(
                materialized.latency.is_some(),
                streamed.output.latency.is_some(),
                "{} seed {seed}: latency probe presence diverges",
                spec.series
            );
            if let (Some(a), Some(b)) = (&materialized.latency, &streamed.output.latency) {
                assert_eq!(
                    a, b,
                    "{} seed {seed}: latency histograms diverge",
                    spec.series
                );
            }
        }
    }
}

/// Detected communities need a materialized trace; the streaming path must
/// refuse them loudly instead of silently running with different routing.
#[test]
fn streaming_rejects_detected_communities() {
    let spec = RunSpec::on(
        "cr @ paper",
        ScenarioSpec::paper(24),
        ProtocolSpec::paper(ProtocolKind::Cr),
    )
    .with_duration(600.0)
    .with_communities(CommunitySource::Detected);
    let err = run_stream(&spec, 1).expect_err("detected communities cannot stream");
    assert!(
        err.contains("materialized"),
        "error should point at the materialized path: {err}"
    );
}

/// Protocols that ignore communities stream fine even with `Detected` set
/// (the map is never resolved).
#[test]
fn streaming_ignores_communities_for_flooding_protocols() {
    let spec = RunSpec::on(
        "epidemic @ paper",
        ScenarioSpec::paper(24),
        ProtocolSpec::paper(ProtocolKind::Epidemic),
    )
    .with_duration(600.0)
    .with_communities(CommunitySource::Detected);
    let run = run_stream(&spec, 1).expect("epidemic never resolves communities");
    assert!(run.output.stats.created > 0);
}
