//! Property tests of the probe-spec grammar: `parse ∘ Display` is the
//! identity over the whole spec space, and cache keys are injective.

use dtn_bench::ProbeSpec;
use proptest::prelude::*;

/// Strategy over every representable probe spec (cadences cover sub-second
//  to multi-day magnitudes).
fn any_probe() -> impl Strategy<Value = ProbeSpec> {
    (0u8..2, 0.001f64..200_000.0).prop_map(|(kind, dt)| match kind {
        0 => ProbeSpec::TimeSeries { dt },
        _ => ProbeSpec::LatencyHist,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every spec the type can express survives a round trip through its
    /// canonical printed form — so any printed spec is a reproducible
    /// `--probe` argument.
    #[test]
    fn parse_display_is_identity(spec in any_probe()) {
        let shown = spec.to_string();
        let parsed = ProbeSpec::parse(&shown)
            .unwrap_or_else(|e| panic!("canonical form `{shown}` failed to parse: {e}"));
        prop_assert_eq!(parsed, spec, "parse ∘ Display must be the identity ({})", shown);
    }

    /// Distinct specs never share a cache key (and equal specs always do):
    /// the key is an injective encoding.
    #[test]
    fn cache_key_is_injective(a in any_probe(), b in any_probe()) {
        if a == b {
            prop_assert_eq!(a.cache_key(), b.cache_key());
        } else {
            prop_assert_ne!(a.cache_key(), b.cache_key(),
                "distinct specs {} and {} share a cache key", a, b);
        }
    }
}
