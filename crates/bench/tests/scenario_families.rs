//! Cross-scenario sweep correctness: a single matrix can put the paper
//! bus-city, random waypoint and trace replay side-by-side as series, the
//! worker-thread count never changes results, and distinct scenario specs
//! with identical `(n, seed, duration)` never share a cache entry (the
//! collision the old `(n_nodes, seed, duration)` key allowed).

use dtn_bench::{
    run_matrix_records, run_matrix_with, ProbeSpec, ProtocolKind, ProtocolSpec, RunSpec,
    ScenarioCache, ScenarioSpec, SweepConfig, WorkloadSpec,
};
use dtn_sim::MetricPoint;
use dtn_testutil::family_matrix;
use std::sync::Arc;

fn run_with_threads(threads: usize) -> (Vec<MetricPoint>, usize) {
    let cache = ScenarioCache::new();
    let points = run_matrix_with(
        &cache,
        &family_matrix(),
        SweepConfig {
            seeds: 2,
            threads,
            verbose: false,
        },
    );
    (points, cache.len())
}

#[test]
fn cross_scenario_matrix_is_thread_invariant() {
    let (single, _) = run_with_threads(1);
    let (multi, _) = run_with_threads(8);
    assert_eq!(single.len(), multi.len());
    for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
        assert_eq!(a.runs, b.runs, "spec {i}: run count differs");
        // Bitwise equality: identical (spec, seed) cells must reduce to
        // identical floats, not merely close ones.
        assert_eq!(
            a.delivery_ratio.to_bits(),
            b.delivery_ratio.to_bits(),
            "spec {i}: delivery ratio differs across thread counts"
        );
        assert_eq!(
            a.latency.to_bits(),
            b.latency.to_bits(),
            "spec {i}: latency differs across thread counts"
        );
        assert_eq!(
            a.goodput.to_bits(),
            b.goodput.to_bits(),
            "spec {i}: goodput differs across thread counts"
        );
        assert_eq!(
            a.relayed.to_bits(),
            b.relayed.to_bits(),
            "spec {i}: relay count differs across thread counts"
        );
    }
    // The sweep must have done real work on every family.
    let delivered: Vec<bool> = single.iter().map(|p| p.delivery_ratio > 0.0).collect();
    assert!(
        delivered.iter().any(|&d| d),
        "no family delivered anything: {single:?}"
    );
}

/// Distinct `(ScenarioSpec, WorkloadSpec)` cells with identical node count,
/// seed and horizon occupy distinct cache entries, and the whole matrix
/// shares one scenario build per cell per seed.
#[test]
fn families_occupy_distinct_cache_entries() {
    let (_, cached) = run_with_threads(4);
    // 4 scenario/workload cells x 2 seeds; the two protocol series per cell
    // must share entries, not duplicate them.
    assert_eq!(cached, 8, "expected one cache entry per (cell, seed)");

    // And head-on: same (n, seed, duration) across specs, different entries.
    let cache = ScenarioCache::new();
    let paper = cache.get_spec(
        &ScenarioSpec::paper(8),
        &WorkloadSpec::PaperUniform,
        1,
        Some(600.0),
    );
    let rwp = cache.get_spec(
        &ScenarioSpec::rwp(8),
        &WorkloadSpec::PaperUniform,
        1,
        Some(600.0),
    );
    assert_eq!(cache.len(), 2);
    assert!(!Arc::ptr_eq(&paper.scenario, &rwp.scenario));
    assert_ne!(
        paper.scenario.trace.contacts, rwp.scenario.trace.contacts,
        "different families must produce different contact processes"
    );
}

/// Probe output is part of the determinism contract: across the scenario
/// families, `TimeSeriesProbe` curves and latency histograms are bitwise
/// identical whatever the worker-thread count, and riding probes never
/// changes the `SimStats` of any cell.
#[test]
fn timeseries_probe_is_thread_invariant_across_families() {
    let probed = |threads: usize| {
        let specs: Vec<RunSpec> = family_matrix()
            .into_iter()
            .map(|s| {
                s.with_probes(vec![
                    ProbeSpec::TimeSeries { dt: 150.0 },
                    ProbeSpec::LatencyHist,
                ])
            })
            .collect();
        run_matrix_records(
            &ScenarioCache::new(),
            &specs,
            SweepConfig {
                seeds: 2,
                threads,
                verbose: false,
            },
        )
    };
    let single = probed(1);
    let multi = probed(8);
    assert_eq!(single.len(), multi.len());
    for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
        assert_eq!(a.cell, b.cell, "record {i}: cell identity differs");
        assert_eq!(a.stats, b.stats, "record {i}: stats differ across threads");
        let (ta, tb) = (
            a.timeseries.as_ref().unwrap(),
            b.timeseries.as_ref().unwrap(),
        );
        assert_eq!(
            ta.samples.len(),
            tb.samples.len(),
            "record {i}: sample counts"
        );
        for (k, (sa, sb)) in ta.samples.iter().zip(&tb.samples).enumerate() {
            assert_eq!(
                sa.t.to_bits(),
                sb.t.to_bits(),
                "record {i} sample {k}: sample time differs across thread counts"
            );
            assert_eq!(
                sa, sb,
                "record {i} sample {k}: curve differs across thread counts"
            );
        }
        let (la, lb) = (a.latency.as_ref().unwrap(), b.latency.as_ref().unwrap());
        assert_eq!(
            la.p50.to_bits(),
            lb.p50.to_bits(),
            "record {i}: p50 differs"
        );
        assert_eq!(la, lb, "record {i}: latency histogram differs");
    }

    // And the probes are invisible to the stats: the plain matrix over the
    // same specs produces identical snapshots.
    let plain = run_matrix_records(
        &ScenarioCache::new(),
        &family_matrix(),
        SweepConfig {
            seeds: 2,
            threads: 4,
            verbose: false,
        },
    );
    for (i, (p, o)) in plain.iter().zip(&single).enumerate() {
        assert_eq!(
            p.stats, o.stats,
            "record {i}: attaching probes changed the simulation statistics"
        );
        assert!(p.timeseries.is_none() && p.latency.is_none());
    }
}

/// A single run's thread count is invisible in its results: for every
/// scenario family on the streaming path, a 1-thread and an N-thread
/// `run_stream` produce bitwise-identical statistics, delivery stamps and
/// probe outputs — the property that justifies excluding `run_threads` from
/// the cell key.
#[test]
fn one_vs_many_run_threads_is_bitwise_identical() {
    for scenario in [
        ScenarioSpec::paper(24),
        ScenarioSpec::city(60, 5),
        ScenarioSpec::rwp(30),
    ] {
        let base = RunSpec::on(
            "Epidemic",
            scenario.clone(),
            ProtocolSpec::paper(ProtocolKind::Epidemic),
        )
        .with_duration(900.0)
        .with_probes(vec![
            ProbeSpec::TimeSeries { dt: 120.0 },
            ProbeSpec::LatencyHist,
        ]);
        for seed in [1, 7] {
            let single = dtn_bench::run_stream(&base.clone().with_run_threads(1), seed).unwrap();
            for threads in [4, 8] {
                let spec = base.clone().with_run_threads(threads);
                assert_eq!(spec.cell_key(seed), base.cell_key(seed));
                let multi = dtn_bench::run_stream(&spec, seed).unwrap();
                let ctx = format!("{scenario}, seed {seed}, {threads} threads");
                assert_eq!(multi.n_nodes, single.n_nodes, "{ctx}");
                assert_eq!(
                    multi.output.stats.snapshot(),
                    single.output.stats.snapshot(),
                    "{ctx}: stats differ"
                );
                assert_eq!(
                    multi.output.stats.delivered_at, single.output.stats.delivered_at,
                    "{ctx}: delivery stamps differ"
                );
                assert_eq!(
                    multi.output.timeseries, single.output.timeseries,
                    "{ctx}: probe curves differ"
                );
                assert_eq!(
                    multi.output.latency, single.output.latency,
                    "{ctx}: latency histograms differ"
                );
            }
        }
    }
}

/// `dtnrun --scenario rwp --protocol eer` end-to-end equivalent at the
/// library layer: an RWP spec resolves, runs and delivers through the same
/// runner path the binary uses.
#[test]
fn rwp_runs_end_to_end() {
    let cache = ScenarioCache::new();
    let spec = RunSpec::on(
        "EER",
        ScenarioSpec::rwp(16),
        ProtocolSpec::paper(ProtocolKind::Eer),
    )
    .with_duration(1_500.0);
    let stats = dtn_bench::run_spec(&cache, &spec, 1);
    assert!(stats.created > 0, "workload generated no messages");
    assert!(
        stats.relayed > 0 || stats.delivered > 0,
        "EER on RWP did no forwarding at all"
    );
}
