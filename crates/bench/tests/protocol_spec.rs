//! ProtocolSpec contract tests: the CLI grammar round-trips (`parse ∘
//! Display` is the identity over the whole parameter space), the paper
//! defaults reproduce the formerly hard-wired constants for every family,
//! and tuned variants of one protocol occupy distinct cell keys while the
//! sweep stays thread-invariant.

use ce_core::{BufferPolicy, EmdMode};
use dtn_bench::{
    run_matrix_with, ProtocolKind, ProtocolParams, ProtocolSpec, RunSpec, ScenarioCache,
    SweepConfig,
};
use proptest::prelude::*;

/// Deterministically builds a valid spec from raw strategy draws: a family
/// index plus enough scalars to perturb every tunable the grammar exposes.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    kind_i: u32,
    lambda: u32,
    window: usize,
    frac: f64,  // in [0, 1)
    secs: f64,  // positive seconds-scale value
    sel_a: u8,  // 3-way selector
    sel_b: u8,  // 3-way selector
    small: u32, // small positive integer
) -> ProtocolSpec {
    let kind = ProtocolKind::ALL[kind_i as usize % ProtocolKind::ALL.len()];
    let mut spec = ProtocolSpec::paper(kind);
    match &mut spec.params {
        ProtocolParams::Eer(c) => {
            c.lambda = lambda;
            c.alpha = 0.05 + frac;
            c.window = window;
            c.forward_hysteresis = secs;
            c.refresh = secs * 0.5;
            if sel_a == 1 {
                c.emd_mode = EmdMode::MeanInterval;
            }
            if sel_b == 1 {
                c.buffer_policy = BufferPolicy::LeastRemainingValue;
            }
            if sel_a == 2 {
                c.adaptive_lambda = Some((small, small + 7));
            }
        }
        ProtocolParams::Cr(c) => {
            c.lambda = lambda;
            c.alpha = 0.05 + frac;
            c.window = window;
            c.forward_hysteresis = secs;
            c.probability_hysteresis = frac;
            c.refresh = secs * 2.0;
            if sel_b == 1 {
                c.buffer_policy = BufferPolicy::LeastRemainingValue;
            }
        }
        ProtocolParams::Ebr(c) => {
            c.lambda = lambda;
            c.alpha = frac;
            c.window = secs;
        }
        ProtocolParams::MaxProp(c) => {
            c.hop_threshold = small;
            c.cost_refresh = secs;
        }
        ProtocolParams::SprayAndWait { lambda: l, binary } => {
            *l = lambda;
            *binary = sel_a != 1;
        }
        ProtocolParams::SprayAndFocus(c) => {
            c.lambda = lambda;
            c.utility_threshold = secs;
            c.transitivity_penalty = secs * 3.0;
        }
        ProtocolParams::Prophet(c) => {
            c.p_init = 0.05 + frac * 0.9;
            c.beta = frac;
            c.gamma = 0.5 + frac * 0.49;
            c.time_unit = secs;
        }
        ProtocolParams::Epidemic | ProtocolParams::Direct | ProtocolParams::FirstContact => {}
    }
    if sel_a == 0 {
        spec.buffer = Some(u64::from(small) * 4096);
    }
    if sel_b == 2 {
        spec.ttl = Some(secs * 10.0);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `ProtocolSpec::parse ∘ Display` is the identity over randomly tuned
    /// specs of every family, and the injective cache encoding agrees.
    #[test]
    fn parse_display_is_identity(
        (kind_i, lambda, window) in (0u32..10, 1u32..64, 1usize..128),
        (frac, secs) in (0.0f64..1.0, 0.25f64..5000.0),
        (sel_a, sel_b, small) in (0u8..3, 0u8..3, 1u32..32),
    ) {
        let spec = build_spec(kind_i, lambda, window, frac, secs, sel_a, sel_b, small);
        let shown = spec.to_string();
        let parsed = ProtocolSpec::parse(&shown)
            .unwrap_or_else(|e| panic!("`{shown}` failed to re-parse: {e}"));
        prop_assert_eq!(&parsed, &spec, "`{}` did not round-trip", shown);
        prop_assert_eq!(parsed.cache_key(), spec.cache_key());
    }
}

/// `ProtocolSpec::paper(k)` reproduces the constants that used to be
/// hard-wired into the registry and the router constructors, for all 10
/// kinds.
#[test]
fn paper_defaults_match_former_constants() {
    for kind in ProtocolKind::ALL {
        let spec = ProtocolSpec::paper(kind);
        assert_eq!(spec.kind(), kind);
        assert_eq!(spec.ttl, None);
        assert_eq!(spec.buffer, None);
        match &spec.params {
            ProtocolParams::Eer(c) => {
                assert_eq!(c.lambda, 10);
                assert_eq!(c.alpha, 0.28);
                assert_eq!(c.window, ce_core::DEFAULT_WINDOW);
                assert_eq!(c.forward_hysteresis, 180.0);
                assert_eq!(c.refresh, 45.0);
                assert_eq!(c.emd_mode, EmdMode::Theorem2);
                assert_eq!(c.buffer_policy, BufferPolicy::OldestReceived);
                assert_eq!(c.adaptive_lambda, None);
            }
            ProtocolParams::Cr(c) => {
                assert_eq!(c.lambda, 10);
                assert_eq!(c.alpha, 0.28);
                assert_eq!(c.window, ce_core::DEFAULT_WINDOW);
                assert_eq!(c.forward_hysteresis, 180.0);
                assert_eq!(c.probability_hysteresis, 0.1);
                assert_eq!(c.refresh, 60.0);
                assert_eq!(c.buffer_policy, BufferPolicy::OldestReceived);
            }
            ProtocolParams::Ebr(c) => {
                assert_eq!(c.lambda, 10);
                assert_eq!(c.alpha, 0.85);
                assert_eq!(c.window, 30.0);
            }
            ProtocolParams::MaxProp(c) => {
                assert_eq!(c.hop_threshold, 7);
                assert_eq!(c.cost_refresh, 60.0);
            }
            ProtocolParams::SprayAndWait { lambda, binary } => {
                assert_eq!(*lambda, 10);
                assert!(*binary, "the paper baseline is binary spray");
            }
            ProtocolParams::SprayAndFocus(c) => {
                assert_eq!(c.lambda, 10);
                assert_eq!(c.utility_threshold, 30.0);
                assert_eq!(c.transitivity_penalty, 300.0);
            }
            ProtocolParams::Prophet(c) => {
                assert_eq!(c.p_init, 0.75);
                assert_eq!(c.beta, 0.25);
                assert_eq!(c.gamma, 0.98);
                assert_eq!(c.time_unit, 30.0);
            }
            ProtocolParams::Epidemic | ProtocolParams::Direct | ProtocolParams::FirstContact => {}
        }
    }
}

/// Two λ values of one protocol occupy distinct `ScenarioKey`s (cell keys),
/// share the underlying scenario build, and reduce to bit-identical results
/// under 1 vs 8 worker threads.
#[test]
fn lambda_variants_key_distinctly_and_stay_thread_invariant() {
    let lo = RunSpec::new(
        "eer:lambda=4",
        8,
        ProtocolSpec::parse("eer:lambda=4").unwrap(),
    )
    .with_duration(1_200.0);
    let hi = RunSpec::new(
        "eer:lambda=16",
        8,
        ProtocolSpec::parse("eer:lambda=16").unwrap(),
    )
    .with_duration(1_200.0);

    // Distinct cells, stable identity, and the scenario part alone would
    // collide — the protocol encoding is what separates them.
    assert_ne!(lo.cell_key(1), hi.cell_key(1));
    assert_eq!(lo.cell_key(1), lo.cell_key(1));
    assert_ne!(lo.cell_key(1), lo.cell_key(2), "seed is part of the key");

    let specs = vec![lo, hi];
    let run = |threads: usize, cache: &ScenarioCache| {
        run_matrix_with(
            cache,
            &specs,
            SweepConfig {
                seeds: 2,
                threads,
                verbose: false,
            },
        )
    };
    let cache = ScenarioCache::new();
    let single = run(1, &cache);
    // Both λ variants run on the *identical* contact process: one scenario
    // build per seed, not one per (λ, seed).
    assert_eq!(cache.len(), 2, "scenario builds must be shared across λ");
    let multi = run(8, &ScenarioCache::new());
    assert_eq!(single.len(), 2);
    for (a, b) in single.iter().zip(&multi) {
        assert_eq!(a.runs, 2);
        assert_eq!(a.delivery_ratio.to_bits(), b.delivery_ratio.to_bits());
        assert_eq!(a.latency.to_bits(), b.latency.to_bits());
        assert_eq!(a.goodput.to_bits(), b.goodput.to_bits());
        assert_eq!(a.relayed.to_bits(), b.relayed.to_bits());
        assert_eq!(a.control_mb.to_bits(), b.control_mb.to_bits());
    }
}

/// A spec-level TTL override reaches the simulation: shorter lifetimes mean
/// TTL drops appear and delivery cannot improve.
#[test]
fn ttl_override_shapes_the_run() {
    let cache = ScenarioCache::new();
    let base = RunSpec::new("eer", 8, ProtocolSpec::parse("eer").unwrap()).with_duration(1_500.0);
    let short = RunSpec::new("eer:ttl=90", 8, ProtocolSpec::parse("eer:ttl=90").unwrap())
        .with_duration(1_500.0);
    let a = dtn_bench::run_spec(&cache, &base, 1);
    let b = dtn_bench::run_spec(&cache, &short, 1);
    assert_eq!(cache.len(), 1, "same scenario serves both TTL variants");
    assert!(
        b.delivered <= a.delivered,
        "a 90 s TTL cannot beat the paper's 20 min TTL"
    );
    assert!(b.drops_ttl >= a.drops_ttl);
}
