//! ProtocolSpec contract tests: the CLI grammar round-trips (`parse ∘
//! Display` is the identity over the whole parameter space), the paper
//! defaults reproduce the formerly hard-wired constants for every family,
//! and tuned variants of one protocol occupy distinct cell keys while the
//! sweep stays thread-invariant.

use ce_core::{BufferPolicy, EmdMode};
use dtn_bench::{
    run_matrix_with, ProtocolKind, ProtocolParams, ProtocolSpec, RunSpec, ScenarioCache,
    SweepConfig,
};
use dtn_testutil::arb_protocol_spec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `ProtocolSpec::parse ∘ Display` is the identity over randomly tuned
    /// specs of every family (drawn from the canonical `dtn_testutil`
    /// generator), and the injective cache encoding agrees.
    #[test]
    fn parse_display_is_identity(spec in arb_protocol_spec()) {
        let shown = spec.to_string();
        let parsed = ProtocolSpec::parse(&shown)
            .unwrap_or_else(|e| panic!("`{shown}` failed to re-parse: {e}"));
        prop_assert_eq!(&parsed, &spec, "`{}` did not round-trip", shown);
        prop_assert_eq!(parsed.cache_key(), spec.cache_key());
    }
}

/// `ProtocolSpec::paper(k)` reproduces the constants that used to be
/// hard-wired into the registry and the router constructors, for all 10
/// kinds.
#[test]
fn paper_defaults_match_former_constants() {
    for kind in ProtocolKind::ALL {
        let spec = ProtocolSpec::paper(kind);
        assert_eq!(spec.kind(), kind);
        assert_eq!(spec.ttl, None);
        assert_eq!(spec.buffer, None);
        match &spec.params {
            ProtocolParams::Eer(c) => {
                assert_eq!(c.lambda, 10);
                assert_eq!(c.alpha, 0.28);
                assert_eq!(c.window, ce_core::DEFAULT_WINDOW);
                assert_eq!(c.forward_hysteresis, 180.0);
                assert_eq!(c.refresh, 45.0);
                assert_eq!(c.emd_mode, EmdMode::Theorem2);
                assert_eq!(c.buffer_policy, BufferPolicy::OldestReceived);
                assert_eq!(c.adaptive_lambda, None);
            }
            ProtocolParams::Cr(c) => {
                assert_eq!(c.lambda, 10);
                assert_eq!(c.alpha, 0.28);
                assert_eq!(c.window, ce_core::DEFAULT_WINDOW);
                assert_eq!(c.forward_hysteresis, 180.0);
                assert_eq!(c.probability_hysteresis, 0.1);
                assert_eq!(c.refresh, 60.0);
                assert_eq!(c.buffer_policy, BufferPolicy::OldestReceived);
            }
            ProtocolParams::Ebr(c) => {
                assert_eq!(c.lambda, 10);
                assert_eq!(c.alpha, 0.85);
                assert_eq!(c.window, 30.0);
            }
            ProtocolParams::MaxProp(c) => {
                assert_eq!(c.hop_threshold, 7);
                assert_eq!(c.cost_refresh, 60.0);
            }
            ProtocolParams::SprayAndWait { lambda, binary } => {
                assert_eq!(*lambda, 10);
                assert!(*binary, "the paper baseline is binary spray");
            }
            ProtocolParams::SprayAndFocus(c) => {
                assert_eq!(c.lambda, 10);
                assert_eq!(c.utility_threshold, 30.0);
                assert_eq!(c.transitivity_penalty, 300.0);
            }
            ProtocolParams::Prophet(c) => {
                assert_eq!(c.p_init, 0.75);
                assert_eq!(c.beta, 0.25);
                assert_eq!(c.gamma, 0.98);
                assert_eq!(c.time_unit, 30.0);
            }
            ProtocolParams::Epidemic | ProtocolParams::Direct | ProtocolParams::FirstContact => {}
        }
    }
}

/// Two λ values of one protocol occupy distinct `ScenarioKey`s (cell keys),
/// share the underlying scenario build, and reduce to bit-identical results
/// under 1 vs 8 worker threads.
#[test]
fn lambda_variants_key_distinctly_and_stay_thread_invariant() {
    let lo = RunSpec::new(
        "eer:lambda=4",
        8,
        ProtocolSpec::parse("eer:lambda=4").unwrap(),
    )
    .with_duration(1_200.0);
    let hi = RunSpec::new(
        "eer:lambda=16",
        8,
        ProtocolSpec::parse("eer:lambda=16").unwrap(),
    )
    .with_duration(1_200.0);

    // Distinct cells, stable identity, and the scenario part alone would
    // collide — the protocol encoding is what separates them.
    assert_ne!(lo.cell_key(1), hi.cell_key(1));
    assert_eq!(lo.cell_key(1), lo.cell_key(1));
    assert_ne!(lo.cell_key(1), lo.cell_key(2), "seed is part of the key");

    let specs = vec![lo, hi];
    let run = |threads: usize, cache: &ScenarioCache| {
        run_matrix_with(
            cache,
            &specs,
            SweepConfig {
                seeds: 2,
                threads,
                verbose: false,
            },
        )
    };
    let cache = ScenarioCache::new();
    let single = run(1, &cache);
    // Both λ variants run on the *identical* contact process: one scenario
    // build per seed, not one per (λ, seed).
    assert_eq!(cache.len(), 2, "scenario builds must be shared across λ");
    let multi = run(8, &ScenarioCache::new());
    assert_eq!(single.len(), 2);
    for (a, b) in single.iter().zip(&multi) {
        assert_eq!(a.runs, 2);
        assert_eq!(a.delivery_ratio.to_bits(), b.delivery_ratio.to_bits());
        assert_eq!(a.latency.to_bits(), b.latency.to_bits());
        assert_eq!(a.goodput.to_bits(), b.goodput.to_bits());
        assert_eq!(a.relayed.to_bits(), b.relayed.to_bits());
        assert_eq!(a.control_mb.to_bits(), b.control_mb.to_bits());
    }
}

/// A spec-level TTL override reaches the simulation: shorter lifetimes mean
/// TTL drops appear and delivery cannot improve.
#[test]
fn ttl_override_shapes_the_run() {
    let cache = ScenarioCache::new();
    let base = RunSpec::new("eer", 8, ProtocolSpec::parse("eer").unwrap()).with_duration(1_500.0);
    let short = RunSpec::new("eer:ttl=90", 8, ProtocolSpec::parse("eer:ttl=90").unwrap())
        .with_duration(1_500.0);
    let a = dtn_bench::run_spec(&cache, &base, 1);
    let b = dtn_bench::run_spec(&cache, &short, 1);
    assert_eq!(cache.len(), 1, "same scenario serves both TTL variants");
    assert!(
        b.delivered <= a.delivered,
        "a 90 s TTL cannot beat the paper's 20 min TTL"
    );
    assert!(b.drops_ttl >= a.drops_ttl);
}
