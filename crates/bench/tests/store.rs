//! The result-store memoisation contract, property-tested:
//!
//! 1. **Warm equals cold, bitwise.** A matrix swept against a fresh store
//!    (all misses) and swept again against the now-populated store (all
//!    hits) returns the same record list — same order, every field bitwise
//!    except `wall_s` (host time) and `cached` (provenance) — including
//!    probe sections, and whatever the execution knobs: warm sweeps at 8
//!    threads or through the ring drain serve the records published by a
//!    sequential cold sweep, because execution knobs never enter a cell
//!    key.
//! 2. **Corruption is a miss, never a serve.** A truncated or bit-flipped
//!    entry fails admission, the cell is recomputed (bitwise equal to the
//!    cold run) and the republished entry heals the store.
//!
//! Matrices are drawn from the canonical `dtn_testutil` generators.

use dtn_bench::{
    run_matrix_records_stored, CellStore, RunRecord, RunSpec, ScenarioCache, SweepConfig,
};
use dtn_testutil::arb_spec_matrix;
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique, empty store root per (test, process); the caller owns cleanup.
fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("dtn_bench_store_itests")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Field-by-field bitwise comparison, `wall_s` and `cached` excepted —
/// `wall_s` measures the host and `cached` is provenance; everything else,
/// probe sections included, must be identical between a computed and a
/// served record.
fn assert_records_identical(reference: &[RunRecord], got: &[RunRecord], ctx: &str) {
    assert_eq!(reference.len(), got.len(), "{ctx}: record count");
    for (i, (a, b)) in reference.iter().zip(got).enumerate() {
        assert_eq!(a.series, b.series, "{ctx}: record {i} series");
        assert_eq!(a.scenario, b.scenario, "{ctx}: record {i} scenario");
        assert_eq!(a.workload, b.workload, "{ctx}: record {i} workload");
        assert_eq!(a.protocol, b.protocol, "{ctx}: record {i} protocol");
        assert_eq!(a.seed, b.seed, "{ctx}: record {i} seed");
        assert_eq!(a.n_nodes, b.n_nodes, "{ctx}: record {i} n_nodes");
        assert_eq!(
            a.duration.to_bits(),
            b.duration.to_bits(),
            "{ctx}: record {i} duration"
        );
        assert_eq!(a.cell, b.cell, "{ctx}: record {i} cell identity");
        assert_eq!(a.group, b.group, "{ctx}: record {i} group identity");
        assert_eq!(a.stats, b.stats, "{ctx}: record {i} stats");
        assert_eq!(
            a.stats.latency_sum.to_bits(),
            b.stats.latency_sum.to_bits(),
            "{ctx}: record {i} latency accumulation order"
        );
        assert_eq!(a.timeseries, b.timeseries, "{ctx}: record {i} timeseries");
        assert_eq!(a.latency, b.latency, "{ctx}: record {i} latency histogram");
        assert_eq!(a.artifact, b.artifact, "{ctx}: record {i} artifact");
    }
}

fn sweep(
    specs: &[RunSpec],
    seeds: u32,
    threads: usize,
    store: Option<&CellStore>,
) -> Vec<RunRecord> {
    run_matrix_records_stored(
        &ScenarioCache::new(),
        specs,
        SweepConfig {
            seeds,
            threads,
            verbose: false,
        },
        store,
    )
}

proptest! {
    // Each case executes the matrix twice cold (reference + store-backed)
    // and serves it three more times; a few random matrices give wide
    // coverage at tolerable wall-clock.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn warm_matrix_is_bitwise_identical_to_cold(
        specs in arb_spec_matrix(1..4),
        seeds in 1u32..3,
    ) {
        let root = tmp_store("warm_vs_cold");
        let store = CellStore::open(&root).expect("fresh store");

        // The store-less reference, and the cold store-backed sweep that
        // populates the store. The store must be invisible to the results.
        let reference = sweep(&specs, seeds, 1, None);
        let cold = sweep(&specs, seeds, 1, Some(&store));
        assert_records_identical(&reference, &cold, "cold with store");
        prop_assert!(
            cold.iter().all(|r| !r.cached),
            "a fresh store must not serve anything"
        );

        // Warm sweeps: every cell served, bitwise identical, whatever the
        // execution shape — sequential, 8 stealing workers, ring drain.
        let warm = sweep(&specs, seeds, 1, Some(&store));
        assert_records_identical(&reference, &warm, "warm sequential");
        prop_assert!(warm.iter().all(|r| r.cached), "warm run must be all hits");

        let warm8 = sweep(&specs, seeds, 8, Some(&store));
        assert_records_identical(&reference, &warm8, "warm 8 threads");
        prop_assert!(warm8.iter().all(|r| r.cached));

        let drained: Vec<RunSpec> = specs
            .iter()
            .map(|s| s.clone().with_ring_drain(2))
            .collect();
        let warm_drained = sweep(&drained, seeds, 4, Some(&store));
        assert_records_identical(&reference, &warm_drained, "warm ring drain");
        prop_assert!(
            warm_drained.iter().all(|r| r.cached),
            "ring drain never enters a cell key, so it must still hit"
        );

        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Corrupt entries — truncated or bit-flipped on disk — are rejected by
/// admission: the cells recompute (bitwise equal to the cold run), are
/// never served from the damaged bytes, and republication heals the store.
#[test]
fn corrupt_entries_are_recomputed_never_served() {
    let root = tmp_store("corruption");
    let store = CellStore::open(&root).expect("fresh store");
    let specs = vec![
        dtn_testutil::run_spec_cell(0, 10, 400.0, 0, 0, 2),
        dtn_testutil::run_spec_cell(1, 9, 350.0, 1, 1, 3),
    ];
    let cold = sweep(&specs, 2, 1, Some(&store));
    assert_eq!(cold.len(), 4);

    // Damage two entries in distinct ways: truncate seed 1 of the first
    // cell mid-document, flip a digit in seed 2 of the second cell so a
    // stats counter no longer matches its probe sections.
    let truncated = store.entry_path(&specs[0].cell_key(1).encoded());
    let text = std::fs::read_to_string(&truncated).expect("entry exists");
    std::fs::write(&truncated, &text[..text.len() / 2]).expect("truncate");

    let flipped = store.entry_path(&specs[1].cell_key(2).encoded());
    let text = std::fs::read_to_string(&flipped).expect("entry exists");
    let delivered = cold[3].stats.delivered;
    let needle = format!("\"delivered\": {delivered}");
    assert!(text.contains(&needle), "fixture must expose the counter");
    std::fs::write(
        &flipped,
        text.replace(&needle, &format!("\"delivered\": {}", delivered + 1)),
    )
    .expect("bit flip");

    assert_eq!(
        store.verify().len(),
        2,
        "both damaged entries must fail verify"
    );
    assert!(
        store.serve(&specs[0].cell_key(1).encoded(), 1).is_none(),
        "a truncated entry must never be served"
    );
    assert!(
        store.serve(&specs[1].cell_key(2).encoded(), 2).is_none(),
        "a flipped entry must never be served"
    );

    // The warm sweep treats the damaged cells as misses and recomputes
    // them; the intact cells are served. Results stay bitwise cold.
    let warm = sweep(&specs, 2, 1, Some(&store));
    assert_records_identical(&cold, &warm, "warm after corruption");
    let cached: Vec<bool> = warm.iter().map(|r| r.cached).collect();
    assert_eq!(
        cached,
        vec![false, true, true, false],
        "exactly the damaged cells recompute"
    );

    // Republication healed the store: everything verifies and serves now.
    assert!(
        store.verify().is_empty(),
        "recomputation must heal the store"
    );
    let healed = sweep(&specs, 2, 1, Some(&store));
    assert_records_identical(&cold, &healed, "healed store");
    assert!(healed.iter().all(|r| r.cached));

    let _ = std::fs::remove_dir_all(&root);
}
