//! The sweep-fabric determinism contract, property-tested:
//!
//! 1. **Stealing is invisible.** `run_matrix_records` over the
//!    work-stealing fabric at 2/4/8 workers returns the *same record list*
//!    — same order, every field bitwise except `wall_s` — as a sequential
//!    1-thread fold of the same matrix.
//! 2. **The drain is invisible.** Routing every run's observers through
//!    the off-thread ring drain (down to capacity 1, the rendezvous
//!    degenerate case) changes nothing either: stats, probe sections and
//!    record identity stay bitwise identical to inline dispatch.
//! 3. **Neither is identity.** `run_threads` and `ring_drain` never enter
//!    a cell key, so all of the above land in the same report cells.
//!
//! Matrices are drawn from the canonical `dtn_testutil` generators
//! (scenario family × protocol × workload × probe set), crossed with seed
//! counts, thread counts and ring capacities.

use dtn_bench::{run_matrix_records, RunRecord, RunSpec, ScenarioCache, SweepConfig};
use dtn_testutil::arb_spec_matrix;
use proptest::prelude::*;

/// Field-by-field bitwise comparison of two record lists, `wall_s`
/// excepted (it measures the host, not the network). `artifact` is also
/// compared — these matrices never attach an eventlog probe, so it must be
/// `None` on both sides.
fn assert_records_identical(reference: &[RunRecord], got: &[RunRecord], ctx: &str) {
    assert_eq!(reference.len(), got.len(), "{ctx}: record count");
    for (i, (a, b)) in reference.iter().zip(got).enumerate() {
        assert_eq!(a.series, b.series, "{ctx}: record {i} series");
        assert_eq!(a.scenario, b.scenario, "{ctx}: record {i} scenario");
        assert_eq!(a.workload, b.workload, "{ctx}: record {i} workload");
        assert_eq!(a.protocol, b.protocol, "{ctx}: record {i} protocol");
        assert_eq!(a.seed, b.seed, "{ctx}: record {i} seed");
        assert_eq!(a.n_nodes, b.n_nodes, "{ctx}: record {i} n_nodes");
        assert_eq!(
            a.duration.to_bits(),
            b.duration.to_bits(),
            "{ctx}: record {i} duration"
        );
        assert_eq!(a.cell, b.cell, "{ctx}: record {i} cell identity");
        assert_eq!(a.group, b.group, "{ctx}: record {i} group identity");
        // StatsSnapshot's PartialEq covers every counter and float
        // accumulator; the latency_sum bit-check pins exact accumulation
        // order on top.
        assert_eq!(a.stats, b.stats, "{ctx}: record {i} stats");
        assert_eq!(
            a.stats.latency_sum.to_bits(),
            b.stats.latency_sum.to_bits(),
            "{ctx}: record {i} latency accumulation order"
        );
        assert_eq!(a.timeseries, b.timeseries, "{ctx}: record {i} timeseries");
        assert_eq!(a.latency, b.latency, "{ctx}: record {i} latency histogram");
        assert_eq!(a.artifact, b.artifact, "{ctx}: record {i} artifact");
    }
}

fn sweep(specs: &[RunSpec], seeds: u32, threads: usize) -> Vec<RunRecord> {
    run_matrix_records(
        &ScenarioCache::new(),
        specs,
        SweepConfig {
            seeds,
            threads,
            verbose: false,
        },
    )
}

proptest! {
    // Each case executes the matrix seven times (1/2/4/8 threads + three
    // drained variants); a handful of random matrices gives wide coverage
    // at tolerable wall-clock.
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn fabric_and_drain_are_bitwise_invisible(
        specs in arb_spec_matrix(1..4),
        seeds in 1u32..3,
    ) {
        // The reference: a 1-thread sweep, which the fabric short-circuits
        // to a plain sequential fold on the calling thread.
        let reference = sweep(&specs, seeds, 1);
        prop_assert_eq!(reference.len(), specs.len() * seeds as usize);

        // Records come back flat in (spec, seed) order whatever ran where.
        for (i, r) in reference.iter().enumerate() {
            let spec = &specs[i / seeds as usize];
            prop_assert_eq!(&r.series, &spec.series);
            prop_assert_eq!(r.seed, (i % seeds as usize) as u64 + 1);
        }

        // 1. Work stealing at every thread count reproduces the fold.
        for threads in [2usize, 4, 8] {
            let got = sweep(&specs, seeds, threads);
            assert_records_identical(&reference, &got, &format!("{threads} threads"));
        }

        // 2. The off-thread ring drain reproduces inline dispatch — at a
        //    generous capacity, at the rendezvous degenerate capacity 1,
        //    and combined with stealing workers.
        for (cap, threads) in [(64usize, 1usize), (1, 1), (2, 4)] {
            let drained: Vec<RunSpec> = specs
                .iter()
                .map(|s| s.clone().with_ring_drain(cap))
                .collect();
            // 3. Execution knobs never enter cell identity.
            for (s, d) in specs.iter().zip(&drained) {
                prop_assert_eq!(s.cell_key(1), d.cell_key(1));
            }
            let got = sweep(&drained, seeds, threads);
            assert_records_identical(
                &reference,
                &got,
                &format!("ring drain cap={cap} threads={threads}"),
            );
        }
    }
}
