//! Sweep determinism: the worker-thread count is a pure throughput knob and
//! must never change simulation results. The runner keys results by
//! `(spec, seed)` instead of racing them, so `threads = 1` and `threads = 8`
//! must produce bit-identical [`MetricPoint`]s for the same matrix.

use dtn_bench::{run_matrix, ProtocolKind, ProtocolSpec, RunSpec, SweepConfig};
use dtn_sim::MetricPoint;

/// A small but non-trivial matrix: four protocol families (including CR,
/// which resolves a community map per scenario) over two node counts, on a
/// shortened horizon to keep the test quick.
fn matrix() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for (label, proto) in [
        ("Epidemic", ProtocolSpec::paper(ProtocolKind::Epidemic)),
        (
            "SprayAndWait",
            ProtocolSpec::paper(ProtocolKind::SprayAndWait).with_lambda(4),
        ),
        ("EER", ProtocolSpec::paper(ProtocolKind::Eer).with_lambda(6)),
        ("CR", ProtocolSpec::paper(ProtocolKind::Cr).with_lambda(6)),
    ] {
        for n in [8u32, 12] {
            specs.push(RunSpec::new(label, n, proto.clone()).with_duration(1_500.0));
        }
    }
    specs
}

fn run_with_threads(threads: usize) -> Vec<MetricPoint> {
    run_matrix(
        &matrix(),
        SweepConfig {
            seeds: 2,
            threads,
            verbose: false,
        },
    )
}

#[test]
fn thread_count_does_not_change_results() {
    let single = run_with_threads(1);
    let multi = run_with_threads(8);
    assert_eq!(single.len(), multi.len());
    for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
        assert_eq!(a.runs, b.runs, "spec {i}: run count differs");
        // Bitwise equality: identical (spec, seed) cells must reduce to
        // identical floats, not merely close ones.
        assert_eq!(
            a.delivery_ratio.to_bits(),
            b.delivery_ratio.to_bits(),
            "spec {i}: delivery ratio differs across thread counts"
        );
        assert_eq!(
            a.latency.to_bits(),
            b.latency.to_bits(),
            "spec {i}: latency differs across thread counts"
        );
        assert_eq!(
            a.goodput.to_bits(),
            b.goodput.to_bits(),
            "spec {i}: goodput differs across thread counts"
        );
        assert_eq!(
            a.relayed.to_bits(),
            b.relayed.to_bits(),
            "spec {i}: relay count differs across thread counts"
        );
        assert_eq!(
            a.control_mb.to_bits(),
            b.control_mb.to_bits(),
            "spec {i}: control traffic differs across thread counts"
        );
    }
}
