//! End-to-end tests of the `dtndiff` binary: golden report fixtures under
//! `tests/golden/` — one per drift class — driven through the real
//! executable, plus hand-crafted TRACE/1.0 artifact pairs for the
//! artifact-mode classes and the self-diff property (any input diffed
//! against itself exits 0).
//!
//! Regenerate the fixtures after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test -p bench --test dtndiff`.

use dtn_bench::report::{ReportSpec, RunRecord};
use dtn_sim::observe::SimEvent;
use dtn_sim::{EventLogWriter, SimObserver, StatsSnapshot, TraceMeta};
use dtn_sim::{MessageId, NodeId, SimTime};
use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs `dtndiff` with `args`, returning (exit code, stdout ‖ stderr).
fn dtndiff(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dtndiff"))
        .args(args)
        .output()
        .expect("dtndiff runs");
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (out.status.code().expect("exit code"), text)
}

/// The pinned two-record report every fixture derives from.
fn base_report() -> ReportSpec {
    let mut report = ReportSpec::new("dtndiff golden base");
    for seed in [1u64, 2] {
        report.push(RunRecord {
            series: "EER".into(),
            scenario: "paper(n=20)".into(),
            workload: "paper".into(),
            protocol: "eer:lambda=4".into(),
            seed,
            n_nodes: 20,
            duration: 500.0,
            cell: format!(
                "scenario=paper:n=20|workload=paper|protocol=eer:lambda=4|seed={seed}|dur=407f400000000000"
            ),
            group: "scenario=paper:n=20|workload=paper|protocol=eer:lambda=4|dur=407f400000000000"
                .into(),
            stats: StatsSnapshot {
                created: 40,
                delivered: 20 + seed,
                duplicate_deliveries: 1,
                relayed: 60,
                aborted: 2,
                drops_buffer: 3,
                drops_ttl: 1,
                drops_protocol: 0,
                refused: 4,
                control_bytes: 4096,
                latency_sum: 1234.5,
                hops_sum: 44,
            },
            wall_s: 0.125,
            timeseries: None,
            latency: None,
            artifact: None,
            cached: false,
        });
    }
    report
}

/// Writes (under `UPDATE_GOLDEN=1`) or checks one fixture, returning its
/// path for the binary to consume.
fn fixture(name: &str, content: &str) -> PathBuf {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, content).unwrap();
        return path;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden fixture {}: {e}", path.display()));
    assert_eq!(
        content,
        expected,
        "fixture generator diverged from {} — if intentional, regenerate \
         with UPDATE_GOLDEN=1",
        path.display()
    );
    path
}

/// The four report fixtures: (identical, seed-level, cell-level,
/// schema-level), in that order.
fn report_fixtures() -> [PathBuf; 4] {
    let base = base_report();
    let mut seed_drift = base.clone();
    seed_drift.records[0].stats.delivered += 1;
    seed_drift.records[0].stats.latency_sum += 80.0;
    let mut cell_drift = base.clone();
    cell_drift.records.pop();
    let schema_drift = base
        .to_json_string()
        .replacen("\"version\": 3", "\"version\": 2", 1);
    [
        fixture("diff_base.json", &base.to_json_string()),
        fixture("diff_seed.json", &seed_drift.to_json_string()),
        fixture("diff_cell.json", &cell_drift.to_json_string()),
        fixture("diff_schema.json", &schema_drift),
    ]
}

#[test]
fn report_fixtures_classify_and_gate() {
    let [base, seed, cell, schema] = report_fixtures();
    let base = base.to_str().unwrap();

    // Self-diff: no drift, exit 0.
    let (code, out) = dtndiff(&["--reports", base, base]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("no drift"), "{out}");

    // Seed-level: same cells, different stats → exit 1.
    let (code, out) = dtndiff(&["--reports", base, seed.to_str().unwrap()]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("drift[seed]"), "{out}");
    assert!(out.contains("delivered"), "names the field: {out}");

    // Cell-level: a cell disappeared → exit 2.
    let (code, out) = dtndiff(&["--reports", base, cell.to_str().unwrap()]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("drift[cell]"), "{out}");
    assert!(out.contains("only in left"), "{out}");

    // Schema-level: version mismatch → exit 3 (wins over content equality).
    let (code, out) = dtndiff(&["--reports", base, schema.to_str().unwrap()]);
    assert_eq!(code, 3, "{out}");
    assert!(out.contains("drift[schema]"), "{out}");
}

#[test]
fn wall_clock_never_gates_reports() {
    let [base, ..] = report_fixtures();
    let mut slow = base_report();
    for r in &mut slow.records {
        r.wall_s *= 1000.0;
    }
    let dir = std::env::temp_dir().join("dtn_dtndiff_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let slow_path = dir.join(format!("slow_{}.json", std::process::id()));
    std::fs::write(&slow_path, slow.to_json_string()).unwrap();
    let (code, out) = dtndiff(&[
        "--reports",
        base.to_str().unwrap(),
        slow_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "wall clock gated: {out}");
    assert!(out.contains("info: wall clock"), "{out}");
    std::fs::remove_file(slow_path).ok();
}

/// Hand-writes a valid TRACE/1.0 artifact with the given cell key and
/// event stream (the writer is an ordinary observer, so driving it
/// directly produces exactly what a recorded run would).
fn craft_trace(path: &Path, cell_key: &str, events: &[SimEvent]) {
    let meta = TraceMeta {
        cell_key: cell_key.into(),
        seed: 1,
        horizon: 100.0,
        n_nodes: 4,
        n_messages: 2,
        labels: vec![],
    };
    let mut w = EventLogWriter::create(path, &meta).expect("create");
    w.on_events(events);
    w.on_end(SimTime::secs(100.0), &StatsSnapshot::default());
    w.status().expect("clean write");
}

#[test]
fn trace_mode_classifies_all_drift_classes() {
    let dir = std::env::temp_dir().join("dtn_dtndiff_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = |tag: &str| dir.join(format!("{tag}_{}.trace", std::process::id()));

    let gen = |t: f64, m: u32| SimEvent::Generated {
        at: SimTime::secs(t),
        msg: MessageId(m),
        src: NodeId(0),
    };
    let cell = "scenario=paper:n=4|workload=paper|protocol=eer|seed=1|dur=0";
    let (a, b, c, d) = (p("a"), p("b"), p("c"), p("d"));
    craft_trace(&a, cell, &[gen(1.0, 0), gen(2.0, 1)]);
    // Same cell, one event differs → seed-level, naming the seq.
    craft_trace(&b, cell, &[gen(1.0, 0), gen(2.5, 1)]);
    // Different cell → cell-level.
    craft_trace(
        &c,
        "scenario=paper:n=4|workload=paper|protocol=cr|seed=1|dur=0",
        &[],
    );
    // Wrong version → schema-level.
    std::fs::write(&d, b"TRACE/9.9\nnot this version").unwrap();

    let (code, out) = dtndiff(&[a.to_str().unwrap(), a.to_str().unwrap()]);
    assert_eq!(code, 0, "self-diff must be clean: {out}");

    let (code, out) = dtndiff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("diverge at seq 1"), "{out}");

    let (code, out) = dtndiff(&[a.to_str().unwrap(), c.to_str().unwrap()]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("different cells"), "{out}");

    let (code, out) = dtndiff(&[a.to_str().unwrap(), d.to_str().unwrap()]);
    assert_eq!(code, 3, "{out}");
    assert!(out.contains("unsupported trace version"), "{out}");

    // Unreadable input is usage/IO, not drift.
    let (code, _) = dtndiff(&["/nonexistent/x.trace", a.to_str().unwrap()]);
    assert_eq!(code, 64);
    let (code, _) = dtndiff(&["only-one-arg"]);
    assert_eq!(code, 64);

    for f in [a, b, c, d] {
        std::fs::remove_file(f).ok();
    }
}
