//! The record → replay contract, property-tested at the bench layer:
//!
//! 1. **Recording is pure observation.** Attaching the eventlog probe never
//!    changes a run's statistics relative to the unrecorded run.
//! 2. **Replay is bitwise.** Re-folding the recorded TRACE/1.0 stream
//!    through `replay_artifact` reproduces the live run's `SimStats` and
//!    probe outputs (time series, latency histogram) bit for bit — on
//!    every field, `control_bytes` and float accumulators included — and
//!    lands in the same report cell as the live run without the recorder.
//! 3. **Corruption is loud.** Flipping a single byte of a recorded payload
//!    fails hash-chain verification naming the offending sequence number,
//!    and `replay_artifact` refuses the artifact.

use dtn_bench::{replay_artifact, run_spec_observed, ProbeSpec, RunRecord, ScenarioCache};
use dtn_testutil::{specs_for, temp_trace, PROTOCOLS, WORKLOADS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn replayed_record_is_bitwise_identical_to_live(
        family in 0usize..2,
        n in 8u32..14,
        duration in 300u32..700,
        protocol in 0usize..PROTOCOLS.len(),
        workload in 0usize..WORKLOADS.len(),
        seed in 0u64..500,
    ) {
        let artifact = temp_trace(&format!(
            "prop_{family}_{n}_{duration}_{protocol}_{workload}_{seed}"
        ));
        let duration = f64::from(duration);
        let (live_spec, rec_spec) =
            specs_for(family, n, duration, protocol, workload, &artifact);
        let cache = ScenarioCache::new();

        // Live run without the recorder: the reference.
        let (ps, live_out) = run_spec_observed(&cache, &live_spec, seed);
        let live = RunRecord::capture_output(&live_spec, &ps, seed, &live_out, 0.0);

        // Recorded run: the recorder is pure observation.
        let (_, rec_out) = run_spec_observed(&cache, &rec_spec, seed);
        prop_assert_eq!(rec_out.stats.snapshot(), live_out.stats.snapshot(),
            "attaching the eventlog probe changed the run");

        // Replay with the live probe set: bitwise identical on every field.
        let replayed = replay_artifact(
            &artifact,
            &[ProbeSpec::TimeSeries { dt: 50.0 }, ProbeSpec::LatencyHist],
        ).expect("valid artifact replays");
        prop_assert_eq!(&replayed.stats, &live.stats, "replayed stats diverged");
        prop_assert_eq!(
            replayed.stats.latency_sum.to_bits(),
            live.stats.latency_sum.to_bits(),
            "float accumulation order must match exactly"
        );
        prop_assert_eq!(&replayed.timeseries, &live.timeseries);
        prop_assert_eq!(&replayed.latency, &live.latency);

        // Same report identity as the recorder-free live run.
        prop_assert_eq!(&replayed.cell, &live.cell);
        prop_assert_eq!(&replayed.group, &live.group);
        prop_assert_eq!(replayed.seed, live.seed);
        prop_assert_eq!(replayed.n_nodes, live.n_nodes);
        prop_assert_eq!(replayed.duration.to_bits(), live.duration.to_bits());
        prop_assert_eq!(&replayed.scenario, &live.scenario);
        prop_assert_eq!(&replayed.workload, &live.workload);
        prop_assert_eq!(&replayed.protocol, &live.protocol);
        // Provenance: the replayed record points back at its artifact.
        prop_assert_eq!(
            replayed.artifact.as_deref(),
            Some(artifact.display().to_string().as_str())
        );

        std::fs::remove_file(&artifact).ok();
    }
}

#[test]
fn corrupted_artifact_is_refused_naming_the_seq() {
    let artifact = temp_trace("corrupt");
    let (_, rec_spec) = specs_for(0, 10, 400.0, 0, 0, &artifact);
    let cache = ScenarioCache::new();
    run_spec_observed(&cache, &rec_spec, 3);

    let clean = std::fs::read(&artifact).expect("artifact written");
    // Flip one byte deep inside the record region (well past the header,
    // well before the trailer).
    let mut bytes = clean.clone();
    let mid = clean.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&artifact, &bytes).unwrap();

    let err = replay_artifact(&artifact, &[]).expect_err("corruption must refuse");
    // Depending on which byte the flip lands on, verification fails on the
    // hash chain, a structural field (tag / seq), or the trailer — every
    // refusal names where in the stream it happened.
    assert!(
        err.contains("hash chain mismatch at seq")
            || err.contains("at seq")
            || err.contains("fingerprint")
            || err.contains("trailer"),
        "corruption not classified: {err}"
    );
    // The pristine artifact still replays.
    std::fs::write(&artifact, &clean).unwrap();
    replay_artifact(&artifact, &[]).expect("pristine artifact replays");
    std::fs::remove_file(&artifact).ok();
}
