//! End-to-end tests of the report pipeline: real sweep records through the
//! JSON emitter and back (`parse ∘ emit = identity`), confidence-interval
//! sanity, golden-file snapshots of the Markdown/CSV emitters, and the
//! registry/README glossary coupling.
//!
//! Regenerate the golden files after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test -p bench --test report_pipeline`.

use dtn_bench::report::{glossary_markdown, validate_document, METRICS};
use dtn_bench::{
    run_matrix_records, ProbeSpec, ProtocolSpec, ReportSpec, RunRecord, RunSpec, ScenarioCache,
    SweepConfig,
};
use dtn_sim::{LatencyHistogram, StatsSnapshot, TimeSeries, TsSample};
use std::path::Path;

fn real_report() -> ReportSpec {
    let specs = vec![
        RunSpec::new("EER", 10, ProtocolSpec::parse("eer:lambda=4").unwrap()).with_duration(500.0),
        RunSpec::new("Epidemic", 10, ProtocolSpec::parse("epidemic").unwrap()).with_duration(500.0),
    ];
    let cfg = SweepConfig {
        seeds: 2,
        threads: 2,
        verbose: false,
    };
    let mut report = ReportSpec::new("pipeline test");
    report.records = run_matrix_records(&ScenarioCache::new(), &specs, cfg);
    report
}

/// A fully synthetic report with pinned values (including wall-clock), so
/// its emitted documents are byte-stable across machines — the golden-file
/// input.
fn synthetic_report() -> ReportSpec {
    let mut report = ReportSpec::new("Golden: two protocols, two seeds");
    for (series, protocol, base) in [("EER", "eer:lambda=4", 50u64), ("Epidemic", "epidemic", 70)] {
        for seed in 1..=2u64 {
            report.push(RunRecord {
                series: series.into(),
                scenario: "paper(n=40)".into(),
                workload: "paper".into(),
                protocol: protocol.into(),
                seed,
                n_nodes: 40,
                duration: 1000.0,
                cell: format!("scenario=paper:n=40|workload=paper|protocol={protocol}|seed={seed}|dur=408f400000000000"),
                group: format!("scenario=paper:n=40|workload=paper|protocol={protocol}|dur=408f400000000000"),
                stats: StatsSnapshot {
                    created: 100,
                    delivered: base + seed * 4,
                    duplicate_deliveries: 2,
                    relayed: 3 * (base + seed * 4),
                    aborted: 5,
                    drops_buffer: 7,
                    drops_ttl: 3,
                    drops_protocol: 1,
                    refused: 2,
                    control_bytes: 3 * 1024 * 1024 / 2,
                    latency_sum: (base + seed * 4) as f64 * 150.0,
                    hops_sum: 2 * (base + seed * 4),
                },
                wall_s: 0.125,
                timeseries: None,
                latency: None,
                artifact: None,
                cached: false,
            });
        }
    }
    report
}

/// The probed sibling of [`synthetic_report`]: every record carries a
/// pinned time series and latency histogram, so the emitted documents are
/// byte-stable — the golden-file input for the probe sections.
fn synthetic_probed_report() -> ReportSpec {
    let mut report = synthetic_report();
    report.title = "Golden: probed report".into();
    for (i, r) in report.records.iter_mut().enumerate() {
        let delivered = r.stats.delivered;
        let samples = (0..=4u64)
            .map(|k| TsSample {
                t: k as f64 * 250.0,
                created: k * 25,
                delivered: delivered * k / 4,
                relayed: delivered * k * 3 / 4,
                dropped: k,
                buffered_bytes: 50_000 * k,
                buffered_msgs: 2 * k,
            })
            .collect();
        r.timeseries = Some(TimeSeries { dt: 250.0, samples });
        r.latency = Some(LatencyHistogram {
            count: delivered,
            p50: 140.0 + i as f64,
            p95: 300.0,
            p99: 410.0,
            max: 450.0,
            buckets: vec![0, 0, 0, 0, 0, 0, 0, 2, delivered - 2],
        });
    }
    report
}

#[test]
fn json_round_trip_on_real_records() {
    let report = real_report();
    assert_eq!(report.records.len(), 4, "2 specs x 2 seeds");
    let text = report.to_json_string();
    let back = ReportSpec::from_json_str(&text).unwrap();
    assert_eq!(back, report, "parse ∘ emit must be the identity");
    // And the emitted document satisfies its own schema.
    validate_document(&text).unwrap();
}

#[test]
fn identical_runs_have_zero_width_ci() {
    let report = real_report();
    // Duplicate one record under a fresh seed: every per-run value of that
    // cell is now identical, so spread statistics must collapse to zero.
    let mut twin = report.records[0].clone();
    twin.seed = 99;
    let mut degenerate = ReportSpec::new("degenerate");
    degenerate.push(report.records[0].clone());
    degenerate.push(twin);
    let cells = degenerate.cells();
    assert_eq!(cells.len(), 1);
    assert_eq!(cells[0].seeds.len(), 2);
    for (key, s) in &cells[0].metrics {
        assert_eq!(s.stddev, 0.0, "{key}: stddev of identical runs");
        assert_eq!(s.ci95, 0.0, "{key}: zero-width CI for identical runs");
        assert_eq!(s.min, s.max, "{key}: degenerate range");
        assert_eq!(s.min, s.mean, "{key}: mean equals the single value");
    }
}

#[test]
fn multi_seed_ci_is_positive_for_varying_metrics() {
    let report = real_report();
    let cells = report.cells();
    assert_eq!(cells.len(), 2);
    for cell in &cells {
        // Seeds differ, so at least the delivered count varies; its CI must
        // be strictly positive while staying finite.
        let s = cell.metric("delivered").unwrap();
        assert!(s.stddev >= 0.0 && s.ci95.is_finite());
        assert!(s.min <= s.mean && s.mean <= s.max);
    }
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "emitter output diverged from {} — if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

#[test]
fn markdown_emitter_matches_golden_file() {
    check_golden("report.md", &synthetic_report().to_markdown());
}

#[test]
fn csv_emitter_matches_golden_file() {
    check_golden("report.csv", &synthetic_report().to_csv());
}

#[test]
fn probed_emitters_match_golden_files() {
    let report = synthetic_probed_report();
    check_golden("report_ts.json", &report.to_json_string());
    check_golden("report_ts.csv", &report.to_csv());
    check_golden("report_ts.md", &report.to_markdown());
}

/// Probe sections survive the JSON round trip exactly and validate, from
/// both synthetic and real (sweep-produced) records.
#[test]
fn probed_json_round_trips_and_validates() {
    let synthetic = synthetic_probed_report();
    let text = synthetic.to_json_string();
    assert_eq!(ReportSpec::from_json_str(&text).unwrap(), synthetic);
    validate_document(&text).unwrap();

    let specs = vec![
        RunSpec::new("EER", 10, ProtocolSpec::parse("eer:lambda=4").unwrap())
            .with_duration(500.0)
            .with_probe(ProbeSpec::TimeSeries { dt: 100.0 })
            .with_probe(ProbeSpec::LatencyHist),
    ];
    let mut real = ReportSpec::new("probed pipeline test");
    real.records = run_matrix_records(
        &ScenarioCache::new(),
        &specs,
        SweepConfig {
            seeds: 2,
            threads: 2,
            verbose: false,
        },
    );
    assert!(real.records.iter().all(|r| r.timeseries.is_some()));
    assert!(real.records.iter().all(|r| r.latency.is_some()));
    let text = real.to_json_string();
    let back = ReportSpec::from_json_str(&text).unwrap();
    assert_eq!(back, real, "probe sections must round-trip exactly");
    let summary = validate_document(&text).unwrap();
    assert!(summary.contains("2 records"), "{summary}");

    // The cell aggregate exists and matches the per-seed curves' length.
    let cells = real.cells();
    assert_eq!(cells.len(), 1);
    let ts = cells[0]
        .timeseries
        .as_ref()
        .expect("aggregated time series");
    assert_eq!(ts.dt, 100.0);
    let min_len = real
        .records
        .iter()
        .map(|r| r.timeseries.as_ref().unwrap().samples.len())
        .min()
        .unwrap();
    assert_eq!(ts.points.len(), min_len);
    // Registered probe metrics surface through the summary.
    assert!(cells[0].metric("latency_p50").unwrap().mean >= 0.0);
    assert!(cells[0].metric("peak_buffer_mb").unwrap().mean > 0.0);
}

/// The validator rejects tampered probe sections.
#[test]
fn validator_rejects_inconsistent_probe_sections() {
    let report = synthetic_probed_report();

    // Bucket counts that no longer sum to the delivery count.
    let mut broken = report.clone();
    broken.records[0].latency.as_mut().unwrap().buckets[0] += 1;
    let err = validate_document(&broken.to_json_string()).unwrap_err();
    assert!(err.contains("sum to count"), "{err}");

    // A time series whose final delivered count disagrees with the stats.
    let mut broken = report.clone();
    broken.records[0]
        .timeseries
        .as_mut()
        .unwrap()
        .samples
        .last_mut()
        .unwrap()
        .delivered += 1;
    let err = validate_document(&broken.to_json_string()).unwrap_err();
    assert!(err.contains("disagrees"), "{err}");

    // Non-cumulative counters.
    let mut broken = report;
    broken.records[0].timeseries.as_mut().unwrap().samples[1].relayed = u64::MAX;
    let err = validate_document(&broken.to_json_string()).unwrap_err();
    assert!(err.contains("cumulative"), "{err}");
}

#[test]
fn csv_has_one_row_per_cell_and_metric() {
    let csv = synthetic_report().to_csv();
    // 2 cells × every registered metric, plus the header.
    // 2 unprobed cells × every always-measured metric, plus the header
    // (probe-dependent metrics are absent, not zero-filled).
    let measured = METRICS.iter().filter(|m| m.available.is_none()).count();
    assert_eq!(csv.lines().count(), 1 + 2 * measured);
}

#[test]
fn readme_glossary_matches_registry() {
    let readme_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let readme = std::fs::read_to_string(&readme_path).expect("README.md readable");
    let glossary = glossary_markdown();
    assert!(
        readme.contains(&glossary),
        "README.md's \"Metrics glossary\" section must equal \
         report::glossary_markdown() verbatim — regenerate it after registry \
         changes (each metric line follows `| Name | key | unit | definition |`)"
    );
}

#[test]
fn bench_trajectory_is_schema_valid() {
    let report = real_report();
    let text = report.to_bench_json_string("shootout");
    let summary = validate_document(&text).unwrap();
    assert!(summary.contains("cen-dtn.bench"), "{summary}");
}
